"""Benchmarks of the memory-hierarchy layer (residency / stalls / energy).

Covers the headline claims of the data-movement refactor:

* the tile-residency LRU accounts a ~6000-task graph in well under a second
  (pure bookkeeping, no simulator involvement),
* shrinking the on-chip capacity below the working set monotonically
  increases off-chip traffic and makes stalls appear,
* the ``memory_aware`` policy never moves more off-chip bytes than
  ``greedy`` and strictly fewer under capacity pressure,
* two-level accounting (per-core local stores) stays cheap bookkeeping and
  the affinity policy earns a higher local hit rate than greedy,
* growing the local:shared capacity ratio monotonically lifts the local
  hit rate while leaving off-chip traffic untouched (inclusion).

Each benchmark emits a machine-readable ``BENCH_*.json`` record via the
``bench_json`` fixture so the perf trajectory is tracked across PRs.
"""

import time

import numpy as np

from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.memory import MemoryHierarchy, TileResidency
from repro.lap.runtime import LAPRuntime
from repro.lap.taskgraph import AlgorithmsByBlocks


def test_residency_accounting_throughput(benchmark, bench_json):
    """Accounting a 5984-task Cholesky graph through the LRU is cheap."""
    graph = AlgorithmsByBlocks(tile=128).cholesky_tasks(4096)
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4,
                                           onchip_memory_mbytes=2.0))

    # Per-call timing inside the callable: the JSON payload must not be
    # inflated by pytest-benchmark's calibration rounds.
    last = {}

    def account():
        started = time.perf_counter()
        hierarchy = MemoryHierarchy.for_chip(lap, tile=128)
        for task in graph:
            hierarchy.account(task)
        hierarchy.finish()
        last["elapsed"] = time.perf_counter() - started
        return hierarchy

    hierarchy = benchmark(account)
    elapsed = last["elapsed"]
    assert len(hierarchy.events) == len(graph)
    assert hierarchy.traffic_bytes > 0
    assert elapsed < 30.0  # bookkeeping only; typically milliseconds
    bench_json("memory_residency_throughput", {
        "num_tasks": len(graph),
        "elapsed_seconds": elapsed,
        "tasks_per_second": len(graph) / elapsed if elapsed else None,
        "traffic_bytes": hierarchy.traffic_bytes,
    })


def test_capacity_pressure_traffic_trend(bench_json):
    """Traffic grows monotonically as the working set is squeezed, and the
    memory_aware policy moves no more bytes than greedy at every point."""
    capacities_kb = (64.0, 8.0, 6.0, 4.0, 3.0)
    rows = []
    for policy in ("greedy", "memory_aware"):
        for kb in capacities_kb:
            lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4,
                                                   onchip_memory_mbytes=1.0))
            runtime = LAPRuntime(lap, 8, policy=policy, timing="memoized",
                                 on_chip_kb=kb)
            stats = runtime.run_blocked_cholesky(48, np.random.default_rng(0),
                                                 verify=False)
            rows.append({
                "policy": policy,
                "on_chip_kb": kb,
                "traffic_bytes": stats["offchip_traffic_bytes"],
                "spill_bytes": stats["spill_bytes"],
                "stall_cycles": stats["stall_cycles"],
                "makespan_cycles": stats["makespan_cycles"],
                "gflops_per_w": stats["gflops_per_w"],
            })
    by_policy = {}
    for row in rows:
        by_policy.setdefault(row["policy"], []).append(row)
    for policy_rows in by_policy.values():
        traffic = [r["traffic_bytes"] for r in policy_rows]  # shrinking kb
        assert traffic == sorted(traffic)
        assert policy_rows[0]["spill_bytes"] == 0      # fits entirely
        assert policy_rows[-1]["spill_bytes"] > 0      # thrashes
    for g, m in zip(by_policy["greedy"], by_policy["memory_aware"]):
        assert m["traffic_bytes"] <= g["traffic_bytes"]
        if g["spill_bytes"] > 0:
            assert m["traffic_bytes"] < g["traffic_bytes"]
    bench_json("memory_capacity_pressure", {"rows": rows})


def test_residency_lru_scales_linearly(benchmark):
    """Touching N distinct tiles through a small LRU stays O(N)."""
    res = TileResidency(capacity_bytes=64 * 512, tile_bytes=512)

    def churn():
        for i in range(20000):
            res.touch([("A", (i % 4096, 0))], [])
        return res

    result = benchmark(churn)
    assert result.peak_resident_bytes <= 64 * 512


def test_local_store_hit_rate_throughput(benchmark, bench_json):
    """Two-level accounting of a ~6000-task graph stays cheap bookkeeping,
    and the affinity policy's core choice earns a higher local hit rate
    than greedy round-robin dispatch on the same graph."""
    graph = AlgorithmsByBlocks(tile=128).cholesky_tasks(4096)
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4,
                                           onchip_memory_mbytes=2.0))
    last = {}

    def account():
        started = time.perf_counter()
        hierarchy = MemoryHierarchy.for_chip(lap, tile=128,
                                             local_store_kb=512.0)
        for index, task in enumerate(graph):
            hierarchy.account(task, core_index=index % 8)
        hierarchy.finish()
        last["elapsed"] = time.perf_counter() - started
        return hierarchy

    hierarchy = benchmark(account)
    elapsed = last["elapsed"]
    assert len(hierarchy.events) == len(graph)
    assert 0.0 < hierarchy.local_hit_rate() < 1.0
    assert elapsed < 30.0  # bookkeeping only; typically milliseconds

    rates = {}
    for policy in ("greedy", "affinity"):
        runtime = LAPRuntime(lap, 128, policy=policy, timing="memoized",
                             local_store_kb=512.0)
        stats = runtime.run_blocked_cholesky(1024, np.random.default_rng(0),
                                             verify=False)
        rates[policy] = stats["local_hit_rate"]
    assert rates["affinity"] > rates["greedy"]
    bench_json("memory_local_store_throughput", {
        "num_tasks": len(graph),
        "elapsed_seconds": elapsed,
        "tasks_per_second": len(graph) / elapsed if elapsed else None,
        "round_robin_hit_rate": hierarchy.local_hit_rate(),
        "greedy_hit_rate": rates["greedy"],
        "affinity_hit_rate": rates["affinity"],
    })


def test_local_to_shared_capacity_ratio_trend(bench_json):
    """For a fixed dispatch order, growing the local:shared capacity ratio
    monotonically lifts the local hit rate and shrinks shared-to-local
    transfer time, while the off-chip traffic stays exactly constant (the
    local level is inclusive and write-through, so the shared level sees
    the identical access stream)."""
    shared_kb = 8.0
    ratios = (0.125, 0.25, 0.5, 1.0)
    graph = AlgorithmsByBlocks(tile=8).cholesky_tasks(48)
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4,
                                           onchip_memory_mbytes=1.0))
    rows = []
    for ratio in ratios:
        hierarchy = MemoryHierarchy.for_chip(lap, tile=8,
                                             on_chip_kb=shared_kb,
                                             local_store_kb=shared_kb * ratio)
        for index, task in enumerate(graph):
            hierarchy.account(task, core_index=index % 2)
        hierarchy.finish()
        rows.append({
            "local_to_shared_ratio": ratio,
            "local_store_kb": shared_kb * ratio,
            "local_hit_rate": hierarchy.local_hit_rate(),
            "local_transfer_cycles": hierarchy.local_transfer_cycles,
            "traffic_bytes": hierarchy.traffic_bytes,
            "spill_bytes": hierarchy.spill_bytes,
        })
    hit_rates = [r["local_hit_rate"] for r in rows]
    assert hit_rates == sorted(hit_rates)
    assert hit_rates[-1] > hit_rates[0]
    transfers = [r["local_transfer_cycles"] for r in rows]
    assert transfers == sorted(transfers, reverse=True)
    assert len({r["traffic_bytes"] for r in rows}) == 1
    assert len({r["spill_bytes"] for r in rows}) == 1
    bench_json("memory_local_capacity_ratio", {"rows": rows})
