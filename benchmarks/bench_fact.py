"""Benchmarks regenerating the matrix-factorization experiments (Chap. 6 / App. A)."""

import time

import pytest

from repro.experiments.registry import run_experiment


def test_fig_6_5(benchmark, report, bench_json):
    """LAC area breakdown: the divide/sqrt extensions cost only a few percent."""
    last = {}

    def regenerate():
        started = time.perf_counter()
        rows = run_experiment("fig_6_5")
        last["elapsed"] = time.perf_counter() - started
        return rows

    rows = benchmark(regenerate)
    report("fig_6_5", rows)
    bench_json("fact_fig_6_5", {
        "rows": len(rows),
        "regenerate_seconds": last["elapsed"],
    })
    by_option = {r["option"]: r for r in rows}
    assert by_option["sw"]["sfu_area_mm2"] == 0.0
    assert by_option["isolate"]["sfu_area_mm2"] > 0.0
    assert by_option["diag"]["sfu_area_mm2"] > 0.0
    # Hardware options add well under 5% to the core area.
    for option in ("isolate", "diag"):
        assert by_option[option]["overhead_pct"] < 5.0


def test_fig_6_6(benchmark, report):
    """Vector-norm efficiency: hardware sqrt and the exponent extension help."""
    rows = benchmark(lambda: run_experiment("fig_6_6_6_7"))
    report("fig_6_6_6_7", rows[:20])
    vnorm = [r for r in rows if r["kernel"] == "vnorm"]
    # For every size, diagonal-PE hardware beats the software option.
    for k in {r["k"] for r in vnorm}:
        sw = next(r for r in vnorm if r["k"] == k and r["sfu"] == "sw"
                  and r["mac_extension"] == "none")
        diag = next(r for r in vnorm if r["k"] == k and r["sfu"] == "diag"
                    and r["mac_extension"] == "none")
        assert diag["gflops_per_w"] > sw["gflops_per_w"]
    # The exponent extension improves efficiency at fixed placement and size.
    base = next(r for r in vnorm if r["k"] == 256 and r["sfu"] == "diag"
                and r["mac_extension"] == "none")
    ext = next(r for r in vnorm if r["k"] == 256 and r["sfu"] == "diag"
               and r["mac_extension"] == "exponent")
    assert ext["gflops_per_w"] > base["gflops_per_w"]
    assert ext["cycles"] < base["cycles"]


def test_fig_6_7(benchmark, report):
    """LU efficiency: the comparator extension and bigger panels help."""
    rows = benchmark(lambda: run_experiment("fig_6_6_6_7"))
    lu = [r for r in rows if r["kernel"] == "lu"]
    # Comparator beats the baseline at every placement and size.
    for placement in ("sw", "isolate", "diag"):
        for k in {r["k"] for r in lu}:
            base = next(r for r in lu if r["k"] == k and r["sfu"] == placement
                        and r["mac_extension"] == "none")
            cmp_ = next(r for r in lu if r["k"] == k and r["sfu"] == placement
                        and r["mac_extension"] == "comparator")
            assert cmp_["gflops_per_w"] >= base["gflops_per_w"]
    # Efficiency grows with the panel height (more work amortises serial steps).
    diag_cmp = sorted((r for r in lu if r["sfu"] == "diag"
                       and r["mac_extension"] == "comparator"), key=lambda r: r["k"])
    effs = [r["gflops_per_w"] for r in diag_cmp]
    assert all(b >= a for a, b in zip(effs, effs[1:]))


def test_fig_a4_a8_area_and_energy_delay(benchmark, report):
    """Area efficiency and inverse energy-delay follow the same ordering."""
    rows = benchmark(lambda: run_experiment("fig_6_6_6_7"))
    for kernel in ("lu", "vnorm"):
        subset = [r for r in rows if r["kernel"] == kernel and r["k"] == 256]
        sw = next(r for r in subset if r["sfu"] == "sw" and r["mac_extension"] == "none")
        diag = next(r for r in subset if r["sfu"] == "diag" and r["mac_extension"] == "none")
        assert diag["gflops_per_mm2"] > sw["gflops_per_mm2"]
        assert diag["inverse_energy_delay"] > sw["inverse_energy_delay"]


def test_table_a_2(benchmark, report):
    """Cycle counts / energy across architecture options and problem sizes."""
    rows = benchmark(lambda: run_experiment("table_a_2"))
    report("table_a_2", rows[:18])
    kernels = {r["kernel"] for r in rows}
    assert {"cholesky", "lu", "vnorm"} <= kernels
    assert all(r["cycles"] > 0 and r["dynamic_energy_nj"] > 0 for r in rows)
    # LU with larger panels costs more cycles and more energy.
    lu_diag = sorted((r for r in rows if r["kernel"] == "lu" and r["sfu"] == "diag"
                      and r["mac_extension"] == "comparator"), key=lambda r: r["k"])
    assert lu_diag[0]["cycles"] < lu_diag[-1]["cycles"]
    assert lu_diag[0]["dynamic_energy_nj"] < lu_diag[-1]["dynamic_energy_nj"]
    # The software divide/sqrt option is always the slowest for the same kernel/size.
    for kernel in ("lu", "vnorm"):
        for k in {r["k"] for r in rows if r["kernel"] == kernel}:
            options = {r["sfu"]: r["cycles"] for r in rows
                       if r["kernel"] == kernel and r["k"] == k and r["mac_extension"] == "none"}
            assert options["sw"] >= options["isolate"]
            assert options["sw"] >= options["diag"]
