"""Benchmarks regenerating the power/area exploration experiments (Sec. 4.4)."""

import time

import pytest

from repro.experiments.registry import run_experiment


def test_fig_4_7_4_8(benchmark, report, bench_json):
    """PE area/power vs local store size: store dominates area, FPU dominates power."""
    last = {}

    def regenerate():
        started = time.perf_counter()
        rows = run_experiment("fig_4_7_4_8")
        last["elapsed"] = time.perf_counter() - started
        return rows

    rows = benchmark(regenerate)
    report("fig_4_7_4_8", rows)
    bench_json("power_fig_4_7_4_8", {
        "rows": len(rows),
        "regenerate_seconds": last["elapsed"],
    })
    # Area grows monotonically with the local store size.
    areas = [r["pe_area_mm2"] for r in rows]
    assert all(b >= a for a, b in zip(areas, areas[1:]))
    big = rows[-1]
    # At ~18-20 KB the local store occupies the majority (up to ~2/3) of the PE.
    assert big["store_area_mm2"] > 0.5 * big["pe_area_mm2"]
    # The overall PE power is dominated by the FPU, not the store.
    assert all(r["fpu_mw_per_gflop"] > r["store_mw_per_gflop"] for r in rows)
    # Smaller local stores consume (slightly) less PE power.
    assert rows[0]["pe_mw_per_gflop"] <= rows[-1]["pe_mw_per_gflop"] * 1.05


def test_fig_4_9_4_10(benchmark, report):
    """With domain-specific SRAM, the cores dominate chip power at every size."""
    rows = benchmark(lambda: run_experiment("fig_4_9_4_10"))
    report("fig_4_9_4_10", rows)
    assert all(r["memory_type"] == "sram" for r in rows)
    for r in rows:
        assert r["cores_mw_per_gflop"] > r["memory_mw_per_gflop"]
        assert r["chip_area_mm2"] == pytest.approx(r["cores_area_mm2"] + r["memory_area_mm2"])
    # Memory area overtakes core area only for the largest configurations.
    small = rows[0]
    assert small["memory_area_mm2"] < small["cores_area_mm2"]


def test_fig_4_11_4_12(benchmark, report):
    """With a NUCA cache, the memory dominates area and (at small sizes) power."""
    nuca = benchmark(lambda: run_experiment("fig_4_11_4_12"))
    report("fig_4_11_4_12", nuca)
    sram = run_experiment("fig_4_9_4_10")
    by_size_sram = {r["onchip_memory_mbytes"]: r for r in sram}
    for r in nuca:
        partner = by_size_sram[r["onchip_memory_mbytes"]]
        # NUCA costs strictly more area and power than the plain SRAM design
        # at every capacity (tags, associative lookup, bandwidth pressure),
        # and the penalty is steepest where fast banks are forced (small sizes).
        assert r["memory_area_mm2"] > partner["memory_area_mm2"]
        assert r["memory_mw_per_gflop"] > 1.2 * partner["memory_mw_per_gflop"]
        if r["onchip_memory_mbytes"] <= 1.0:
            assert r["memory_mw_per_gflop"] > 1.5 * partner["memory_mw_per_gflop"]
        assert r["chip_area_mm2"] > partner["chip_area_mm2"]
    # Beyond a few MB the NUCA memory occupies more area than the compute cores.
    large_caps = [r for r in nuca if r["onchip_memory_mbytes"] >= 8.0]
    assert large_caps and all(r["memory_area_mm2"] > r["cores_area_mm2"] for r in large_caps)
    # In the SRAM organisation the cores dominate the chip area up to ~8 MB.
    sram_small = [r for r in sram if r["onchip_memory_mbytes"] <= 4.0]
    assert sram_small and all(r["memory_area_mm2"] < r["cores_area_mm2"] for r in sram_small)
