"""Benchmarks regenerating the FFT / hybrid-core experiments (Chap. 6.2 / App. B)."""

import time

import pytest

from repro.experiments.registry import run_experiment


def test_table_6_2(benchmark, report, bench_json):
    """Cache-contained DP FFT: the LAC designs lead CPUs/GPUs by a wide margin."""
    last = {}

    def regenerate():
        started = time.perf_counter()
        rows = run_experiment("table_6_2")
        last["elapsed"] = time.perf_counter() - started
        return rows

    rows = benchmark(regenerate)
    report("table_6_2", rows)
    bench_json("fft_table_6_2", {
        "rows": len(rows),
        "regenerate_seconds": last["elapsed"],
        "best_gflops_per_w": max(r["gflops_per_w"] for r in rows),
    })
    by_design = {r["design"]: r["gflops_per_w"] for r in rows}
    assert by_design["LAC-fft"] > 10.0 * by_design["General-purpose CPU (45nm)"]
    assert by_design["LAC-hybrid"] > 3.0 * by_design["GPU SM (45nm)"]
    assert by_design["LAC-fft"] >= by_design["LAC-hybrid"] * 0.9


def test_fig_6_9(benchmark, report):
    """Hybrid design: both workloads supported with modest efficiency loss."""
    rows = benchmark(lambda: run_experiment("fig_6_9"))
    report("fig_6_9", rows)
    by_variant = {r["variant"]: r for r in rows}
    # The dedicated designs only support their own workload.
    assert by_variant["lac"]["fft_gflops_per_w"] == 0.0
    assert by_variant["fft"]["gemm_gflops_per_w"] == 0.0
    # The hybrid supports both within ~20% of the dedicated LAC's GEMM efficiency.
    assert by_variant["hybrid"]["gemm_eff_vs_lac"] > 0.8
    assert by_variant["hybrid"]["fft_gflops_per_w"] > 0.0


def test_table_b_1(benchmark, report):
    """FFT core requirements: overlap trades local store for bandwidth headroom."""
    rows = benchmark(lambda: run_experiment("table_b_1"))
    report("table_b_1", rows[:8])
    assert {r["variant"] for r in rows} == {"1d", "2d"}
    overlapped = [r for r in rows if r["overlap"]]
    serial = [r for r in rows if not r["overlap"]]
    assert len(overlapped) == len(serial)
    for o, s in zip(sorted(overlapped, key=lambda r: (r["points"], r["variant"])),
                    sorted(serial, key=lambda r: (r["points"], r["variant"]))):
        assert o["local_store_words_per_pe"] > s["local_store_words_per_pe"]
        assert o["compute_cycles"] <= s["compute_cycles"]


def test_fig_b_5_to_b_7(benchmark, report):
    """Bandwidth for full overlap stays under the 4-doubles/cycle column-bus cap."""
    rows = benchmark(lambda: run_experiment("fig_b_5_b_7"))
    report("fig_b_5_b_7", rows)
    capped = [r for r in rows if "required_bw_words_per_cycle" in r]
    assert capped
    for r in capped:
        if r["block_points"] >= 64 and r["overlap"]:
            assert r["required_bw_words_per_cycle"] <= r["max_external_bw_words_per_cycle"]
    load_row = next(r for r in rows if "avg_comm_load_words_per_cycle" in r)
    assert 0.0 < load_row["avg_comm_load_words_per_cycle"] <= 8.0


def test_table_b_2(benchmark, report):
    """PE SRAM options: dual porting costs area, banking buys bandwidth."""
    rows = benchmark(lambda: run_experiment("table_b_2"))
    report("table_b_2", rows)
    by_option = {r["option"]: r for r in rows}
    assert by_option["16KB dual-ported"]["area_mm2"] > by_option["16KB single-ported"]["area_mm2"]
    assert by_option["8KB single-ported"]["area_mm2"] < by_option["16KB single-ported"]["area_mm2"]
    assert by_option["2 x 8KB single-ported"]["peak_bw_bytes_per_cycle"] == \
        2 * by_option["16KB single-ported"]["peak_bw_bytes_per_cycle"]
    assert all(r["max_frequency_ghz"] > 1.0 for r in rows)


def test_table_b_3(benchmark, report):
    """PE design variants: the hybrid supports both workloads at bounded extra cost."""
    rows = benchmark(lambda: run_experiment("table_b_3"))
    report("table_b_3", rows)
    by_variant = {r["variant"]: r for r in rows}
    assert by_variant["hybrid"]["supports_gemm"] and by_variant["hybrid"]["supports_fft"]
    assert not by_variant["fft"]["supports_gemm"]
    assert not by_variant["lac"]["supports_fft"]
    # Hybrid area exceeds the FFT design but stays within ~40% of the LAC design.
    assert by_variant["hybrid"]["area_mm2"] >= by_variant["fft"]["area_mm2"]
    assert by_variant["hybrid"]["area_mm2"] <= 1.4 * by_variant["lac"]["area_mm2"]
    # Peak power of each design is bounded by a small number of watts per PE.
    assert all(r["max_power_w"] < 0.2 for r in rows)
