"""Benchmarks regenerating the CPU/GPU vs LAP comparisons (Sec. 4.5)."""

import time

import pytest

from repro.experiments.registry import run_experiment


def test_fig_4_13_to_4_15(benchmark, report, bench_json):
    """Normalised power breakdowns: GPUs/CPUs are overhead-dominated, the LAP is not."""
    last = {}

    def regenerate():
        started = time.perf_counter()
        data = run_experiment("fig_4_13_4_15")
        last["elapsed"] = time.perf_counter() - started
        return data

    data = benchmark(regenerate)
    report("fig_4_13_4_15", data)
    bench_json("compare_fig_4_13_4_15", {
        "architectures": len(data),
        "regenerate_seconds": last["elapsed"],
    })
    # Every breakdown is W/GFLOPS per component, all positive.
    for arch, series in data.items():
        assert all(v >= 0.0 for v in series.values()), arch
    # Register files are a dominant consumer on both GPUs (> FPU share).
    for gpu in ("GTX280_SGEMM", "GTX480_SGEMM", "GTX480_DGEMM"):
        assert data[gpu]["Register File"] > data[gpu]["FPUs"]
    # Each LAP consumes an order of magnitude less W/GFLOPS than its counterpart.
    pairs = [("GTX280_SGEMM", "LAP_vs_GTX280"), ("GTX480_SGEMM", "LAP_vs_GTX480_SP"),
             ("GTX480_DGEMM", "LAP_vs_GTX480_DP"), ("Penryn_DGEMM", "LAP_vs_Penryn")]
    for reference, lap in pairs:
        ref_total = sum(data[reference].values())
        lap_total = sum(data[lap].values())
        assert lap_total < ref_total / 8.0, (reference, lap)


def test_fig_4_16(benchmark, report):
    """GFLOPS/W at equal throughput: LAP wins by roughly an order of magnitude."""
    rows = benchmark(lambda: run_experiment("fig_4_16"))
    report("fig_4_16", rows)
    assert len(rows) == 4
    for row in rows:
        assert row["lap_gflops_per_w"] > row["reference_gflops_per_w"]
        assert row["advantage"] > 8.0
    # Single-precision comparisons show the largest margins.
    sp_rows = [r for r in rows if "SGEMM" in r["reference"]]
    assert all(r["advantage"] > 15.0 for r in sp_rows)


def test_table_4_2(benchmark, report):
    """Chip-level comparison: LAP leads GFLOPS/W and inverse energy-delay."""
    rows = benchmark(lambda: run_experiment("table_4_2"))
    report("table_4_2", rows)
    laps = [r for r in rows if r["is_lap"]]
    others = [r for r in rows if not r["is_lap"]]
    assert len(laps) == 2
    for lap in laps:
        peers = [r for r in others if r["precision"] == lap["precision"]]
        assert all(lap["gflops2_per_w"] > r["gflops2_per_w"] for r in peers)
        assert all(lap["gflops_per_w"] >= r["gflops_per_w"] for r in peers)
    # The double-precision LAP achieves >= 15 GFLOPS/W (paper: 15-25 range).
    lap_dp = next(r for r in laps if r["precision"] == "double")
    assert lap_dp["gflops_per_w"] >= 15.0
    # Power density of the LAP stays low (most area is SRAM).
    assert all(r["w_per_mm2"] <= 0.5 for r in laps)


def test_table_4_3(benchmark, report):
    """Qualitative design-choice table: LAP removes instructions and big RFs."""
    rows = benchmark(lambda: run_experiment("table_4_3"))
    report("table_4_3", rows)
    by_aspect = {r["aspect"]: r for r in rows}
    assert "no instructions" in by_aspect["Instruction pipeline"]["lap"].lower()
    assert "single-ported" in by_aspect["Register file"]["lap"].lower()
    assert "sram" in by_aspect["On-chip memory"]["lap"].lower()
    assert len(rows) >= 6
