"""Benchmarks regenerating the chip-level experiments (Chapter 4)."""

import time

import pytest

from repro.experiments.registry import run_experiment


def test_table_4_1(benchmark, report, bench_json):
    """Hierarchy requirements: full overlap needs more memory, less stall."""
    last = {}

    def regenerate():
        started = time.perf_counter()
        rows = run_experiment("table_4_1")
        last["elapsed"] = time.perf_counter() - started
        return rows

    rows = benchmark(regenerate)
    report("table_4_1", rows)
    bench_json("chip_table_4_1", {
        "rows": len(rows),
        "regenerate_seconds": last["elapsed"],
    })
    by_key = {(r["level"], r["overlap"]): r for r in rows}
    # Full overlap doubles the resident C / A storage at core and chip level.
    assert by_key[("core", "full")]["memory_words"] > by_key[("core", "partial")]["memory_words"]
    assert by_key[("chip", "full")]["memory_words"] > by_key[("chip", "partial")]["memory_words"]
    # Off-chip bandwidth demand for full overlap is exactly twice the partial one.
    assert by_key[("off-chip", "full")]["bandwidth_words_per_cycle"] == pytest.approx(
        2.0 * by_key[("off-chip", "partial")]["bandwidth_words_per_cycle"])
    # The chip-level on-chip memory is dominated by the n x n block of C.
    assert by_key[("chip", "partial")]["memory_words"] >= 2048 * 2048


def test_fig_4_2(benchmark, report):
    """On-chip BW vs memory: demand grows steeply as the memory shrinks."""
    rows = benchmark(lambda: run_experiment("fig_4_2"))
    report("fig_4_2", rows)
    assert all(r["utilization"] > 0.9 for r in rows)
    series = sorted((r for r in rows if r["num_cores"] == 8 and r["n"] == 2048),
                    key=lambda r: r["onchip_memory_mbytes"])
    bws = [r["onchip_bandwidth_bytes_per_cycle"] for r in series]
    assert all(a >= b - 1e-9 for a, b in zip(bws, bws[1:]))
    # For the same blocking (same bandwidth demand), bigger problems need more
    # on-chip memory: the n = 2048 curve lies to the right of the n = 512 one.
    for num_cores in (8, 2):
        per_kc = {}
        for r in rows:
            if r["num_cores"] != num_cores:
                continue
            per_kc.setdefault(r["kc"], {})[r["n"]] = r["onchip_memory_mbytes"]
        for kc, by_n in per_kc.items():
            sizes = [by_n[n] for n in sorted(by_n)]
            assert all(b > a for a, b in zip(sizes, sizes[1:])), (num_cores, kc)
    # The fewer-but-bigger-cores organisation (S=2, nr=8) reaches the same
    # aggregate bandwidth demand with far less of the memory spent on resident
    # A blocks (2 blocks instead of 8), i.e. a smaller footprint at equal kc.
    s8 = {r["kc"]: r["onchip_memory_mbytes"] for r in rows
          if r["num_cores"] == 8 and r["n"] == 2048}
    s2 = {r["kc"]: r["onchip_memory_mbytes"] for r in rows
          if r["num_cores"] == 2 and r["n"] == 2048}
    common = set(s8) & set(s2)
    assert common and all(s2[kc] < s8[kc] for kc in common)


def test_fig_4_3(benchmark, report):
    """Scaling cores without superlinear bandwidth growth stalls utilisation."""
    rows = benchmark(lambda: run_experiment("fig_4_3"))
    report("fig_4_3", rows)
    # At the smallest blocking (least on-chip memory), configurations with the
    # same S/BW ratio show essentially the same utilisation: scaling the core
    # count with only a linear bandwidth increase buys no efficiency.
    smallest_kc_rows = [r for r in rows if r["bw_words_per_cycle"] * 4 == r["num_cores"]]
    smallest_mem = {}
    for r in smallest_kc_rows:
        key = r["num_cores"]
        if key not in smallest_mem or r["onchip_memory_mbytes"] < smallest_mem[key]["onchip_memory_mbytes"]:
            smallest_mem[key] = r
    utils = [r["utilization_pct"] for r in smallest_mem.values()]
    assert len(utils) >= 3
    assert (max(utils) - min(utils)) / max(utils) < 0.20
    # For a fixed core count, more bandwidth raises utilisation.
    s16 = [r for r in rows if r["num_cores"] == 16]
    low_bw = min(s16, key=lambda r: r["bw_words_per_cycle"])
    high_bw = max(s16, key=lambda r: r["bw_words_per_cycle"])
    assert high_bw["utilization_pct"] > low_bw["utilization_pct"]
    # With generous bandwidth, 16 cores clearly outperform 4 cores.
    rich = [r for r in rows if r["bw_words_per_cycle"] >= 2 * r["num_cores"]]
    p16 = max(r["relative_performance_pct"] for r in rich if r["num_cores"] == 16)
    p4 = max(r["relative_performance_pct"] for r in rich if r["num_cores"] == 4)
    assert p16 > 2.5 * p4


def test_fig_4_5(benchmark, report):
    """Off-chip BW vs on-chip memory trade-off for several problem sizes."""
    rows = benchmark(lambda: run_experiment("fig_4_5"))
    report("fig_4_5", rows)
    for n in (512, 1024, 2048):
        series = sorted((r for r in rows if r["n"] == n),
                        key=lambda r: r["onchip_memory_mbytes"])
        bws = [r["offchip_bandwidth_bytes_per_cycle"] for r in series]
        # Bandwidth demand grows as the resident fraction of C shrinks.
        assert all(a >= b - 1e-9 for a, b in zip(bws, bws[1:]))
    # Bigger problems need less off-chip bandwidth at the same memory size.
    big = [r for r in rows if r["n"] == 2048 and r["ns"] == 512][0]
    small = [r for r in rows if r["n"] == 1024 and r["ns"] == 512][0]
    assert big["offchip_bandwidth_bytes_per_cycle"] <= small["offchip_bandwidth_bytes_per_cycle"]


def test_fig_4_6(benchmark, report):
    """LAP GFLOPS vs off-chip bandwidth and memory size (headline ~600 GFLOPS)."""
    rows = benchmark(lambda: run_experiment("fig_4_6"))
    report("fig_4_6", rows)
    # With 16 cores, a large on-chip block and 16 B/cycle the LAP sustains
    # >80% of its 716-GFLOPS peak (the paper quotes ~600 of 700 GFLOPS).
    best = [r for r in rows if r["num_cores"] == 16 and r["n"] == 1024
            and r["offchip_bw_bytes_per_cycle"] >= 16]
    assert best and all(r["gflops"] > 550.0 for r in best)
    # Small on-chip memory (small n) limits achievable utilisation.
    starved = [r for r in rows if r["num_cores"] == 16 and r["n"] == 256
               and r["offchip_bw_bytes_per_cycle"] == 4]
    rich = [r for r in rows if r["num_cores"] == 16 and r["n"] == 1024
            and r["offchip_bw_bytes_per_cycle"] == 4]
    assert starved[0]["utilization_pct"] < rich[0]["utilization_pct"]


def test_validation_fermi_csx(benchmark, report):
    """Sec. 4.3: the model predicts published DGEMM utilisations within ~10%."""
    rows = benchmark(lambda: run_experiment("validation_4_3"))
    report("validation_4_3", rows)
    fermi = next(r for r in rows if "Fermi" in r["architecture"])
    csx = next(r for r in rows if "CSX" in r["architecture"])
    assert 70.0 <= fermi["predicted_utilization_pct"] <= 80.0
    assert fermi["limiting_resource"] == "on-chip bandwidth"
    assert 75.0 <= csx["predicted_utilization_pct"] <= 90.0
    assert csx["limiting_resource"] == "off-chip bandwidth"
    assert all(r["prediction_error_pct"] < 10.0 for r in rows)
