"""Benchmarks regenerating the level-3 BLAS experiments (Chapter 5)."""

import time

import pytest

from repro.experiments.registry import run_experiment


def test_fig_5_8(benchmark, report, bench_json):
    """SYRK utilisation vs local store & bandwidth: approaches peak with both."""
    last = {}

    def regenerate():
        started = time.perf_counter()
        rows = run_experiment("fig_5_8_5_9")
        last["elapsed"] = time.perf_counter() - started
        return rows

    rows = benchmark(regenerate)
    report("fig_5_8_5_9", rows[:40])
    bench_json("blas_fig_5_8", {
        "rows": len(rows),
        "regenerate_seconds": last["elapsed"],
        "max_utilization_pct": max(r["utilization_pct"] for r in rows),
    })
    syrk = [r for r in rows if r["operation"] == "syrk"]
    assert syrk
    # Monotone in local store size at fixed bandwidth.
    series = sorted((r for r in syrk if r["nr"] == 4 and r["bandwidth_bytes_per_cycle"] == 4),
                    key=lambda r: r["local_store_kbytes_per_pe"])
    utils = [r["utilization_pct"] for r in series]
    assert all(b >= a - 1e-9 for a, b in zip(utils, utils[1:]))
    # Reaches ~90% with 20 KB/PE and 4 B/cycle.
    good = [r for r in series if r["local_store_kbytes_per_pe"] >= 20]
    assert good and all(r["utilization_pct"] > 85.0 for r in good)


def test_fig_5_9(benchmark, report):
    """TRSM utilisation: close to GEMM for reasonable design points."""
    rows = benchmark(lambda: run_experiment("fig_5_8_5_9"))
    trsm = [r for r in rows if r["operation"] == "trsm"]
    assert trsm
    good = [r for r in trsm if r["nr"] == 4 and r["bandwidth_bytes_per_cycle"] >= 4
            and r["local_store_kbytes_per_pe"] >= 20]
    assert good and all(r["utilization_pct"] > 90.0 for r in good)
    # Starved configurations are visibly worse.
    starved = [r for r in trsm if r["nr"] == 4 and r["bandwidth_bytes_per_cycle"] == 1
               and r["local_store_kbytes_per_pe"] < 3]
    assert starved and all(r["utilization_pct"] < 90.0 for r in starved)


def test_fig_5_10(benchmark, report):
    """Utilisation ordering GEMM >= TRSM >= SYRK >= SYR2K at matched design points."""
    rows = benchmark(lambda: run_experiment("fig_5_10"))
    report("fig_5_10", rows[:24])
    # Group by (nr, local store) and check the ordering of operations.
    keys = {(r["nr"], round(r["local_store_kbytes_per_pe"], 3)) for r in rows}
    checked = 0
    for key in keys:
        group = {r["operation"]: r["utilization_pct"] for r in rows
                 if (r["nr"], round(r["local_store_kbytes_per_pe"], 3)) == key}
        if len(group) == 4:
            assert group["gemm"] >= group["trsm"] - 1e-9
            assert group["trsm"] >= group["syrk"] - 1.0
            assert group["syrk"] >= group["syr2k"] - 1e-9
            checked += 1
    assert checked >= 8
    # At generous design points everything is above 79% (paper: 85%+).
    generous = [r for r in rows if r["local_store_kbytes_per_pe"] >= 25]
    assert generous and all(r["utilization_pct"] > 75.0 for r in generous)


def test_table_5_1(benchmark, report):
    """LAC efficiency for level-3 BLAS at 1.1 GHz: tens of DP GFLOPS/W for all."""
    rows = benchmark(lambda: run_experiment("table_5_1"))
    report("table_5_1", rows)
    assert {r["operation"] for r in rows} == {"gemm", "trsm", "syrk", "syr2k"}
    for r in rows:
        assert r["utilization_pct"] > 70.0
        assert r["gflops_per_w"] > 20.0
        assert r["w_per_mm2"] < 1.0
    # GEMM remains the most efficient operation for both core sizes.
    for nr in (4, 8):
        group = {r["operation"]: r for r in rows if r["nr"] == nr}
        assert all(group["gemm"]["gflops_per_w"] >= group[op]["gflops_per_w"] - 1e-9
                   for op in ("trsm", "syrk", "syr2k"))
