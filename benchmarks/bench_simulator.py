"""Benchmarks of the cycle-level simulator itself.

These are true pytest-benchmark measurements of the Python simulator running
the kernels the dissertation's own simulator was used to verify (GEMM, TRSM,
Cholesky; Sec. 1.3), plus the simulator-vs-analytical-model cross check.
They double as ablation benches: GEMM with and without operand prefetching
accounting, and TRSM inner-kernel variants.
"""

import time

import numpy as np
import pytest

from repro.kernels.cholesky import lac_cholesky
from repro.kernels.fft import lac_fft
from repro.kernels.gemm import lac_gemm
from repro.kernels.trsm import lac_trsm
from repro.lac.core import LACConfig, LinearAlgebraCore
from repro.models.core_model import CoreGEMMModel
from repro.reference import ref_cholesky, ref_trsm


RNG = np.random.default_rng(2024)


def _fresh_core(nr: int = 4) -> LinearAlgebraCore:
    return LinearAlgebraCore(LACConfig(nr=nr))


def test_simulated_gemm_16x16(benchmark, bench_json):
    a = RNG.random((16, 16))
    b = RNG.random((16, 16))
    c = RNG.random((16, 16))
    last = {}

    def run():
        started = time.perf_counter()
        result = lac_gemm(_fresh_core(), c, a, b)
        last["elapsed"] = time.perf_counter() - started
        return result

    result = benchmark(run)
    np.testing.assert_allclose(result.output, c + a @ b, rtol=1e-12)
    assert result.counters.mac_ops == 16 ** 3
    # Utilisation of the simulated run stays healthy even with every operand
    # transfer charged (no prefetch overlap modelled in this small run).
    assert result.utilization > 0.4
    bench_json("simulator_gemm_16x16", {
        "cycles": result.cycles,
        "utilization": result.utilization,
        "simulate_seconds": last["elapsed"],
    })


def test_simulated_gemm_matches_analytical_peak_term(benchmark):
    """Cross-validation of simulator cycles against the analytical model."""
    mc, kc, n = 16, 32, 16
    a = RNG.random((mc, kc))
    b = RNG.random((kc, n))
    c = RNG.random((mc, n))

    def run():
        core = _fresh_core()
        return lac_gemm(core, c, a, b)

    result = benchmark(run)
    model = CoreGEMMModel(nr=4)
    peak = model.cycles(mc, kc, n, 1e9).peak_cycles
    rank1 = (mc // 4) * (n // 4) * kc
    assert rank1 == pytest.approx(peak)
    assert peak <= result.cycles <= 2.5 * peak


def test_simulated_trsm_8x16(benchmark):
    l = np.tril(RNG.random((8, 8))) + 8 * np.eye(8)
    b = RNG.random((8, 16))

    def run():
        return lac_trsm(_fresh_core(), l, b)

    result = benchmark(run)
    np.testing.assert_allclose(result.output, ref_trsm(l, b), rtol=1e-10)


def test_simulated_trsm_variant_ablation(benchmark):
    """Ablation: the software-pipelined inner kernel charges fewer cycles."""
    l = np.tril(RNG.random((8, 8))) + 8 * np.eye(8)
    b = RNG.random((8, 32))

    def run_sw():
        return lac_trsm(_fresh_core(), l, b, variant="software_pipelined")

    sw = benchmark(run_sw)
    basic = lac_trsm(_fresh_core(), l, b, variant="basic")
    np.testing.assert_allclose(sw.output, basic.output, rtol=1e-10)
    assert sw.cycles < basic.cycles


def test_simulated_cholesky_12x12(benchmark):
    m = RNG.random((12, 12))
    a = m @ m.T + 12 * np.eye(12)

    def run():
        return lac_cholesky(_fresh_core(), a)

    result = benchmark(run)
    np.testing.assert_allclose(result.output, ref_cholesky(a), rtol=1e-9)


def test_simulated_fft_256(benchmark):
    x = RNG.standard_normal(256) + 1j * RNG.standard_normal(256)

    def run():
        return lac_fft(_fresh_core(), x)

    result = benchmark(run)
    np.testing.assert_allclose(result.output, np.fft.fft(x), rtol=1e-9, atol=1e-9)
    # FFT on the LAC sustains a healthy fraction of peak FMA issue.
    assert result.utilization > 0.2


def test_simulated_gemm_8x8_core(benchmark):
    """The nr=8 core: four times the MAC count of the 4x4 core on the same problem."""
    a = RNG.random((16, 16))
    b = RNG.random((16, 16))
    c = RNG.random((16, 16))

    def run():
        return lac_gemm(_fresh_core(nr=8), c, a, b)

    result = benchmark(run)
    np.testing.assert_allclose(result.output, c + a @ b, rtol=1e-12)
    assert result.num_pes == 64
