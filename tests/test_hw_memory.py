"""Tests for the on-chip memory (SRAM / NUCA) and off-chip interface models."""

import pytest

from repro.hw.memory import NUCACache, OffChipInterface, OnChipMemory


def test_onchip_memory_bandwidth_scales_with_banks():
    few = OnChipMemory(capacity_bytes=4 * 2 ** 20, banks=4)
    many = OnChipMemory(capacity_bytes=4 * 2 ** 20, banks=16)
    assert many.peak_bandwidth_bytes_per_cycle == 4 * few.peak_bandwidth_bytes_per_cycle


def test_onchip_memory_area_grows_with_capacity():
    small = OnChipMemory(capacity_bytes=1 * 2 ** 20, banks=8)
    big = OnChipMemory(capacity_bytes=8 * 2 ** 20, banks=8)
    assert big.area_mm2 > small.area_mm2


def test_sustainable_bandwidth_is_clamped_to_peak():
    mem = OnChipMemory(capacity_bytes=2 * 2 ** 20, banks=8, word_bytes=8)
    assert mem.sustainable_bandwidth_bytes_per_cycle(1.0) == 1.0
    assert mem.sustainable_bandwidth_bytes_per_cycle(1e9) == mem.peak_bandwidth_bytes_per_cycle


def test_onchip_dynamic_power_scales_with_access_rate():
    mem = OnChipMemory(capacity_bytes=4 * 2 ** 20, banks=8)
    assert mem.dynamic_power_w(8.0) == pytest.approx(8.0 * mem.dynamic_power_w(1.0))


def test_nuca_costs_more_than_plain_sram():
    """The NUCA organisation pays for tags, lookup and fast banks."""
    capacity = 2 * 2 ** 20
    sram = OnChipMemory(capacity_bytes=capacity, banks=8)
    nuca = NUCACache(capacity_bytes=capacity, banks=8,
                     required_bandwidth_bytes_per_cycle=64.0)
    assert nuca.area_mm2 > sram.area_mm2
    assert nuca.energy_per_access_j() > sram.energy_per_access_j()


def test_small_fast_nuca_is_less_area_efficient_than_large_slow_one():
    """A small cache forced to high bandwidth costs more area per MB."""
    small = NUCACache(capacity_bytes=2 ** 20, banks=8,
                      required_bandwidth_bytes_per_cycle=64.0)
    large = NUCACache(capacity_bytes=8 * 2 ** 20, banks=8,
                      required_bandwidth_bytes_per_cycle=16.0)
    small_per_mb = small.area_mm2 / 1.0
    large_per_mb = large.area_mm2 / 8.0
    assert small_per_mb > large_per_mb


def test_offchip_interface_conversions():
    iface = OffChipInterface(bandwidth_gbytes_per_sec=32.0)
    assert iface.bytes_per_cycle(1.0) == pytest.approx(32.0)
    assert iface.bytes_per_cycle(2.0) == pytest.approx(16.0)
    assert iface.transfer_cycles(64.0, 1.0) == pytest.approx(2.0)
    assert iface.transfer_energy_j(1e9) == pytest.approx(1e9 * 60e-12)


def test_offchip_interface_validation():
    with pytest.raises(ValueError):
        OffChipInterface(bandwidth_gbytes_per_sec=0.0)
    iface = OffChipInterface(bandwidth_gbytes_per_sec=10.0)
    with pytest.raises(ValueError):
        iface.bytes_per_cycle(0.0)
    with pytest.raises(ValueError):
        iface.transfer_energy_j(-5.0)


def test_onchip_memory_validation():
    with pytest.raises(ValueError):
        OnChipMemory(capacity_bytes=0)
    with pytest.raises(ValueError):
        OnChipMemory(capacity_bytes=1024, banks=0)
    mem = OnChipMemory(capacity_bytes=2 ** 20)
    with pytest.raises(ValueError):
        mem.dynamic_power_w(-1.0)
    with pytest.raises(ValueError):
        mem.sustainable_bandwidth_bytes_per_cycle(-1.0)


def test_nuca_validation():
    with pytest.raises(ValueError):
        NUCACache(capacity_bytes=0)
    with pytest.raises(ValueError):
        NUCACache(capacity_bytes=1024, associativity=0)


def test_describe_strings():
    assert "MB" in OnChipMemory(capacity_bytes=2 ** 20).describe()
    assert "NUCA" in NUCACache(capacity_bytes=2 ** 20).describe()
    assert "GB/s" in OffChipInterface(bandwidth_gbytes_per_sec=20).describe()
