"""Tests for the distributed controller model and the access counters."""

import pytest

from repro.lac.controller import (BASIC_GEMM_COUNTERS, BASIC_GEMM_STATES,
                                  BLOCKED_GEMM_COUNTERS, BLOCKED_GEMM_STATES,
                                  ControlState, MicroProgram, MicroStep, OperationSelect,
                                  PEController)
from repro.lac.stats import AccessCounters


def test_basic_controller_budget_matches_paper():
    """The basic GEMM state machine: 8 states, 2 address registers, 1 counter."""
    ctrl = PEController(blocking_levels=1)
    assert ctrl.num_states == BASIC_GEMM_STATES == 8
    assert ctrl.num_counters == BASIC_GEMM_COUNTERS == 1
    assert len(ctrl.address_registers) == 2


def test_three_level_blocking_budget_matches_paper():
    """With three blocking levels: 10 states and 4 counters."""
    ctrl = PEController(blocking_levels=3)
    assert ctrl.num_states == BLOCKED_GEMM_STATES == 10
    assert ctrl.num_counters == BLOCKED_GEMM_COUNTERS == 4


def test_controller_rejects_invalid_blocking_depth():
    with pytest.raises(ValueError):
        PEController(blocking_levels=0)
    with pytest.raises(ValueError):
        PEController(blocking_levels=4)


def test_gemm_schedule_steady_state_is_single_cycle_per_rank1():
    ctrl = PEController()
    program = ctrl.gemm_schedule(kc=32, n_panels=2)
    assert program.count("rank1") == 64
    assert program.total_cycles == 64  # loads/stores overlapped


def test_gemm_schedule_without_prefetch_adds_stall_steps():
    ctrl = PEController()
    program = ctrl.gemm_schedule(kc=8, n_panels=3, prefetch=False)
    assert program.count("stall") == 3


def test_gemm_schedule_validates_bounds():
    ctrl = PEController()
    with pytest.raises(ValueError):
        ctrl.gemm_schedule(kc=0)


def test_operation_select_resets_state():
    ctrl = PEController()
    ctrl.transition(ControlState.RANK1_LOOP)
    ctrl.select_operation(OperationSelect.TRSM)
    assert ctrl.state is ControlState.IDLE
    assert ctrl.operation is OperationSelect.TRSM


def test_transition_type_checked():
    ctrl = PEController()
    with pytest.raises(TypeError):
        ctrl.transition("rank1")


def test_micro_step_rejects_negative_cycles():
    with pytest.raises(ValueError):
        MicroStep(kind="rank1", cycles=-1)


def test_micro_program_iteration_and_len():
    program = MicroProgram(OperationSelect.GEMM)
    program.add("rank1", 1)
    program.add("store_c", 0)
    assert len(program) == 2
    assert [s.kind for s in program] == ["rank1", "store_c"]


# --------------------------------------------------------------- counters
def test_counters_merge_and_copy():
    a = AccessCounters(cycles=10, mac_ops=160)
    b = AccessCounters(cycles=5, mac_ops=80, row_broadcasts=5)
    c = a.copy()
    a.merge(b)
    assert a.cycles == 15 and a.mac_ops == 240 and a.row_broadcasts == 5
    assert c.cycles == 10  # copy unaffected


def test_counters_reset():
    c = AccessCounters(cycles=3, sfu_ops=2)
    c.reset()
    assert c.cycles == 0 and c.sfu_ops == 0


def test_counters_derived_quantities():
    c = AccessCounters(cycles=10, mac_ops=160, store_a_reads=4, store_b_reads=6,
                       row_broadcasts=3, column_broadcasts=7,
                       external_loads=8, external_stores=2)
    assert c.flops == 320
    assert c.local_store_accesses == 10
    assert c.bus_broadcasts == 10
    assert c.external_words == 10
    assert c.utilization(16) == pytest.approx(1.0)


def test_counters_utilization_clamped_and_zero_safe():
    assert AccessCounters().utilization(16) == 0.0
    c = AccessCounters(cycles=1, mac_ops=100)
    assert c.utilization(16) == 1.0


def test_activity_factors_bounded():
    c = AccessCounters(cycles=100, mac_ops=1600, store_a_reads=400, store_b_reads=1600,
                       row_broadcasts=100, column_broadcasts=100, sfu_ops=2,
                       external_loads=64, external_stores=64)
    factors = c.activity_factors(16)
    for name, value in factors.items():
        assert 0.0 <= value <= 1.0, name
    assert factors["mac"] == pytest.approx(1.0)


def test_summary_mentions_cycles():
    assert "cycles" in AccessCounters(cycles=7).summary()
