"""Tests for technology nodes and scaling rules."""

import math

import pytest

from repro.hw.technology import (OperatingPoint, TECH_45NM, TECH_65NM, TECH_90NM,
                                 TechnologyNode, scale_area, scale_energy_per_op,
                                 scale_frequency, scale_power)


def test_known_nodes_have_expected_features():
    assert TECH_45NM.feature_nm == 45.0
    assert TECH_65NM.feature_nm == 65.0
    assert TECH_90NM.feature_nm == 90.0
    assert 0.2 <= TECH_45NM.leakage_fraction <= 0.35


def test_scale_factor_between_nodes():
    assert TECH_90NM.scale_factor_to(TECH_45NM) == pytest.approx(2.0)
    assert TECH_45NM.scale_factor_to(TECH_90NM) == pytest.approx(0.5)


def test_area_scaling_is_quadratic_in_feature_ratio():
    area_90 = 4.0
    area_45 = scale_area(area_90, TECH_90NM, TECH_45NM)
    assert area_45 == pytest.approx(1.0)


def test_area_scaling_round_trip():
    a = 1.234
    back = scale_area(scale_area(a, TECH_65NM, TECH_45NM), TECH_45NM, TECH_65NM)
    assert back == pytest.approx(a)


def test_power_scaling_shrinks_when_moving_to_smaller_node():
    p65 = 10.0
    p45 = scale_power(p65, TECH_65NM, TECH_45NM)
    assert p45 < p65


def test_frequency_scaling_increases_when_shrinking():
    f = scale_frequency(1.0, TECH_90NM, TECH_45NM)
    assert f == pytest.approx(2.0)


def test_energy_scaling_decreases_when_shrinking():
    e90 = 1e-12
    e45 = scale_energy_per_op(e90, TECH_90NM, TECH_45NM)
    assert e45 < e90


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        scale_area(-1.0, TECH_65NM, TECH_45NM)
    with pytest.raises(ValueError):
        scale_power(-1.0, TECH_65NM, TECH_45NM)
    with pytest.raises(ValueError):
        scale_frequency(-1.0, TECH_65NM, TECH_45NM)
    with pytest.raises(ValueError):
        scale_energy_per_op(-1.0, TECH_65NM, TECH_45NM)


def test_operating_point_voltage_interpolation():
    low = OperatingPoint.at_frequency(0.2)
    mid = OperatingPoint.at_frequency(1.0)
    high = OperatingPoint.at_frequency(2.1)
    assert low.vdd < mid.vdd < high.vdd
    assert low.vdd == pytest.approx(0.65, abs=1e-6)
    assert high.vdd == pytest.approx(1.1, abs=1e-6)


def test_operating_point_clamps_voltage_outside_sweep():
    very_high = OperatingPoint.at_frequency(5.0)
    assert very_high.frequency_ghz == 5.0
    assert very_high.vdd == pytest.approx(1.1, abs=1e-6)


def test_operating_point_requires_positive_frequency():
    with pytest.raises(ValueError):
        OperatingPoint.at_frequency(0.0)


def test_dynamic_power_scale_grows_with_frequency_and_voltage():
    ref = OperatingPoint(frequency_ghz=1.0, vdd=0.8)
    faster = OperatingPoint(frequency_ghz=2.0, vdd=1.0)
    scale = faster.dynamic_power_scale(ref)
    assert scale == pytest.approx(2.0 * (1.0 / 0.8) ** 2)


def test_energy_per_op_scale_only_depends_on_voltage():
    ref = OperatingPoint(frequency_ghz=1.0, vdd=0.8)
    same_v = OperatingPoint(frequency_ghz=2.0, vdd=0.8)
    assert same_v.energy_per_op_scale(ref) == pytest.approx(1.0)
