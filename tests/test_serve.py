"""Tests for the design-space service: daemon, client, remote cache tier.

The failure-mode suite is the point of this file: a server that is
unreachable at start, dies mid-sweep or responds slowly must never fail a
sweep or lose rows -- only degrade it to local-only caching with a single
warning -- and the rows a remote-tier sweep produces must be byte-identical
to a purely local run.
"""

import json
import socket
import time

import pytest

from repro.engine import SweepSpec, execute_jobs, stream_jobs
from repro.engine.cache import ResultCache
from repro.engine.spec import params_key
from repro.serve import RemoteCache, ServeClient, ServeDaemon, ServerUnavailable
from repro.serve.client import env_remote_retries, env_remote_timeout_s


def _design_jobs(cores=(2, 4), freqs=(1.0, 1.4)):
    spec = SweepSpec().constants(nr=4).grid(cores=cores, frequency_ghz=freqs)
    return spec.jobs("design")


def _dead_url():
    """URL of a port that nothing listens on (bind, grab, release)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
    return f"http://127.0.0.1:{port}"


@pytest.fixture
def daemon(tmp_path):
    daemon = ServeDaemon(tmp_path / "server", quiet=True).start()
    yield daemon
    daemon.stop()


def _client(daemon, retries=0):
    return ServeClient(daemon.url, timeout_s=5.0, retries=retries)


# ----------------------------------------------------------------- daemon
class TestDaemonEndpoints:
    def test_ping_reports_identity(self, daemon):
        doc = _client(daemon).ping()
        assert doc["ok"] is True
        assert doc["code_version"] == daemon.cache.code_version

    def test_entry_roundtrip_by_key(self, daemon):
        client = _client(daemon)
        params = {"cores": 4, "nr": 4}
        key = params_key("design", params, salt=daemon.cache.code_version)
        payload = {"runner": "design", "params": params,
                   "code_version": daemon.cache.code_version,
                   "row": {"cores": 4, "gflops": 1.5}}
        assert client.get_entry(key) is None  # miss first
        client.put_entry(key, payload)
        stored = client.get_entry(key)
        assert stored["row"] == payload["row"]
        assert daemon.counters["cache_puts"] == 1
        assert daemon.counters["cache_hits"] == 1
        assert daemon.counters["cache_misses"] == 1

    def test_entry_survives_daemon_restart(self, tmp_path):
        directory = tmp_path / "server"
        key = params_key("design", {"cores": 2}, salt="v1")
        payload = {"row": {"cores": 2}}
        daemon = ServeDaemon(directory, code_version="v1", quiet=True).start()
        try:
            _client(daemon).put_entry(key, payload)
        finally:
            daemon.stop()
        daemon = ServeDaemon(directory, code_version="v1", quiet=True).start()
        try:
            assert _client(daemon).get_entry(key)["row"] == {"cores": 2}
        finally:
            daemon.stop()

    def test_malformed_key_rejected(self, daemon):
        client = _client(daemon)
        for bad in ("nope", "AB" * 32, "0" * 63):
            with pytest.raises(ServerUnavailable, match="HTTP 400"):
                client.put_entry(bad, {"row": {}})
        # A traversal "key" splits into extra path segments and falls off
        # the route table (404); either way nothing reaches the filesystem.
        assert client.put_entry("../../etc/passwd", {"row": {}}) is None
        assert len(daemon.cache) == 0

    def test_entry_without_row_rejected(self, daemon):
        with pytest.raises(ServerUnavailable, match="HTTP 400"):
            _client(daemon).put_entry("0" * 64, {"runner": "design"})

    def test_key_payload_mismatch_rejected(self, daemon):
        """A payload naming runner/params must hash to the key it claims."""
        with pytest.raises(ServerUnavailable, match="HTTP 400"):
            _client(daemon).put_entry("0" * 64, {
                "runner": "design", "params": {"cores": 4},
                "code_version": "v1", "row": {"gflops": 1.0}})

    def test_replay_roundtrip_by_key(self, daemon):
        client = _client(daemon)
        key = daemon.sidecar.key_for("schedule", "material")
        assert client.get_replay(key) is None
        client.put_replay(key, {"trace": [1, 2, 3]})
        assert client.get_replay(key)["trace"] == [1, 2, 3]
        assert daemon.counters["replay_puts"] == 1

    def test_stats_document(self, daemon):
        client = _client(daemon)
        client.ping()
        stats = client.stats()
        assert stats["server"] == "repro.serve/v1"
        assert stats["counters"]["requests"] >= 1
        assert stats["cache"]["directory"] == str(daemon.cache.directory)

    def test_prune_endpoint(self, daemon):
        client = _client(daemon)
        for index in range(4):
            key = params_key("design", {"i": index}, salt="v1")
            client.put_entry(key, {"row": {"i": index}})
            time.sleep(0.01)  # distinct mtimes for a stable LRU order
        outcome = client.prune(max_entries=1)
        assert outcome["removed"] == 3
        assert outcome["entries"] == 1

    def test_prune_without_limits_rejected(self, daemon):
        with pytest.raises(ServerUnavailable, match="HTTP 400"):
            _client(daemon).prune()

    def test_unknown_path_is_a_miss(self, daemon):
        assert _client(daemon)._request("GET", "/nope") is None


# ----------------------------------------------------------------- client
class TestServeClient:
    def test_env_knobs_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_REMOTE_TIMEOUT_S", raising=False)
        monkeypatch.delenv("REPRO_REMOTE_RETRIES", raising=False)
        assert env_remote_timeout_s() == 5.0
        assert env_remote_retries() == 2

    def test_env_knobs_degrade_on_garbage(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT_S", "forever")
        assert env_remote_timeout_s() == 5.0
        monkeypatch.setenv("REPRO_REMOTE_RETRIES", "-2")
        assert env_remote_retries() == 2
        err = capsys.readouterr().err
        assert "REPRO_REMOTE_TIMEOUT_S" in err
        assert "REPRO_REMOTE_RETRIES" in err

    def test_env_knobs_apply(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT_S", "0.25")
        monkeypatch.setenv("REPRO_REMOTE_RETRIES", "5")
        client = ServeClient("http://127.0.0.1:1")
        assert client.timeout_s == 0.25
        assert client.retries == 5

    def test_bare_host_gets_scheme(self):
        assert ServeClient("127.0.0.1:80", timeout_s=1.0,
                           retries=0).base_url == "http://127.0.0.1:80"

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError, match="timeout_s"):
            ServeClient("http://x", timeout_s=0.0, retries=0)
        with pytest.raises(ValueError, match="retries"):
            ServeClient("http://x", timeout_s=1.0, retries=-1)

    def test_unreachable_server_retries_with_backoff(self):
        client = ServeClient(_dead_url(), timeout_s=0.5, retries=2,
                             backoff_s=0.05)
        sleeps = []
        client._sleep = sleeps.append
        with pytest.raises(ServerUnavailable):
            client.ping()
        assert client.attempts == 3
        assert client.retried == 2
        # Exponential base with jitter: sleep k is in [b*2^k, 2*b*2^k).
        assert 0.05 <= sleeps[0] < 0.10
        assert 0.10 <= sleeps[1] < 0.20

    def test_stalled_server_times_out(self):
        """A server that accepts but never answers trips the timeout."""
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            url = f"http://127.0.0.1:{sock.getsockname()[1]}"
            client = ServeClient(url, timeout_s=0.2, retries=1,
                                 backoff_s=0.01)
            client._sleep = lambda _seconds: None
            started = time.monotonic()
            with pytest.raises(ServerUnavailable):
                client.ping()
            assert client.attempts == 2
            assert time.monotonic() - started < 5.0

    def test_miss_is_none_not_an_error(self, daemon):
        client = _client(daemon)
        assert client.get_entry("f" * 64) is None
        assert client.attempts == 1  # a 404 never burns the retry budget


# ----------------------------------------------------------- remote cache
class TestRemoteCache:
    def test_needs_a_server_url(self, tmp_path):
        with pytest.raises(ValueError, match="server_url"):
            RemoteCache(tmp_path)

    def test_two_clients_deduplicate_through_the_server(self, daemon, tmp_path):
        jobs = _design_jobs()
        cache_a = RemoteCache(tmp_path / "a", daemon.url, timeout_s=5.0,
                              retries=0)
        first = execute_jobs(jobs, mode="serial", cache=cache_a)
        assert first.executed == len(jobs)
        assert cache_a.remote_puts == len(jobs)

        cache_b = RemoteCache(tmp_path / "b", daemon.url, timeout_s=5.0,
                              retries=0)
        second = execute_jobs(jobs, mode="serial", cache=cache_b)
        assert second.executed == 0
        assert second.cached == len(jobs)
        assert cache_b.remote_hits == len(jobs)
        assert json.dumps(second.rows) == json.dumps(first.rows)

    def test_remote_rows_byte_identical_to_local_run(self, daemon, tmp_path):
        jobs = _design_jobs()
        local = execute_jobs(jobs, mode="serial",
                             cache=ResultCache(tmp_path / "local"))
        RemoteCache(tmp_path / "warm", daemon.url, timeout_s=5.0,
                    retries=0)  # tier construction alone must not talk
        warm = RemoteCache(tmp_path / "a", daemon.url, timeout_s=5.0, retries=0)
        execute_jobs(jobs, mode="serial", cache=warm)
        remote = execute_jobs(jobs, mode="serial",
                              cache=RemoteCache(tmp_path / "b", daemon.url,
                                                timeout_s=5.0, retries=0))
        assert remote.executed == 0
        assert json.dumps(remote.rows) == json.dumps(local.rows)

    def test_remote_hit_fills_local_tier(self, daemon, tmp_path):
        jobs = _design_jobs()
        warm = RemoteCache(tmp_path / "a", daemon.url, timeout_s=5.0, retries=0)
        execute_jobs(jobs, mode="serial", cache=warm)
        cache = RemoteCache(tmp_path / "b", daemon.url, timeout_s=5.0,
                            retries=0)
        execute_jobs(jobs, mode="serial", cache=cache)
        assert cache.remote_hits == len(jobs)
        execute_jobs(jobs, mode="serial", cache=cache)
        # The second pass is pure local disk: no new remote traffic.
        assert cache.remote_hits == len(jobs)
        assert cache.hits == 2 * len(jobs)

    def test_server_unreachable_at_start_degrades_once(self, tmp_path, capsys):
        jobs = _design_jobs()
        cache = RemoteCache(tmp_path / "a", _dead_url(), timeout_s=0.5,
                            retries=0)
        result = execute_jobs(jobs, mode="serial", cache=cache)
        assert all(row is not None for row in result.rows)
        assert result.executed == len(jobs)
        assert cache.degraded
        assert cache.tier == "local"
        err = capsys.readouterr().err
        assert err.count("cache server unavailable") == 1

    def test_server_dies_mid_sweep_no_lost_rows(self, tmp_path, capsys):
        """The tentpole failure mode: killing the daemon mid-stream only
        degrades caching; the sweep completes with byte-identical rows."""
        jobs = _design_jobs(cores=(2, 4, 6), freqs=(1.0, 1.2))
        reference = execute_jobs(jobs, mode="serial",
                                 cache=ResultCache(tmp_path / "ref"))
        daemon = ServeDaemon(tmp_path / "server", quiet=True).start()
        cache = RemoteCache(tmp_path / "a", daemon.url, timeout_s=0.5,
                            retries=0)
        stream = stream_jobs(jobs, mode="serial", cache=cache)
        events = [next(stream)]
        daemon.stop()  # the server goes away while the sweep is running
        events.extend(stream)
        result = stream.result()
        assert len(events) == len(jobs)
        assert all(row is not None for row in result.rows)
        assert json.dumps(result.rows) == json.dumps(reference.rows)
        assert cache.degraded
        err = capsys.readouterr().err
        assert err.count("cache server unavailable") == 1

    def test_degraded_tier_reports_in_counters_and_manifest(self, tmp_path):
        from repro.obs.manifest import build_run_manifest

        jobs = _design_jobs()
        cache = RemoteCache(tmp_path / "a", _dead_url(), timeout_s=0.5,
                            retries=0)
        result = execute_jobs(jobs, mode="serial", cache=cache)
        assert result.cache_stats["tier"] == "local"
        assert result.cache_stats["degraded"] is True
        manifest = build_run_manifest(result)
        assert manifest["cache_tier"] == "local"

    def test_live_tier_reports_in_manifest(self, daemon, tmp_path):
        from repro.obs.manifest import build_run_manifest

        jobs = _design_jobs()
        cache = RemoteCache(tmp_path / "a", daemon.url, timeout_s=5.0,
                            retries=0)
        result = execute_jobs(jobs, mode="serial", cache=cache)
        assert result.cache_stats["tier"] == "local+remote"
        assert result.cache_stats["remote_puts"] == len(jobs)
        manifest = build_run_manifest(result)
        assert manifest["cache_tier"] == "local+remote"

    def test_uncached_manifest_tier_is_none(self):
        from repro.obs.manifest import build_run_manifest

        result = execute_jobs(_design_jobs(), mode="serial")
        assert build_run_manifest(result)["cache_tier"] == "none"

    def test_stats_name_the_server(self, daemon, tmp_path):
        cache = RemoteCache(tmp_path / "a", daemon.url, timeout_s=5.0,
                            retries=0)
        stats = cache.stats()
        assert stats["server"] == daemon.url
        assert stats["tier"] == "local+remote"
        assert stats["remote_hit_rate"] == 0.0


# ------------------------------------------------------------ sweep service
class TestSweepService:
    def test_submit_and_stream_rows(self, daemon, tmp_path):
        spec = SweepSpec().constants(nr=4).grid(cores=(2, 4),
                                                frequency_ghz=(1.0, 1.4))
        jobs = spec.jobs("design")
        reference = execute_jobs(jobs, mode="serial",
                                 cache=ResultCache(tmp_path / "ref"))
        client = _client(daemon)
        sweep_id = client.submit_sweep(spec.to_payload(), "design",
                                       mode="serial")
        rows = [None] * len(jobs)
        end = None
        for event in client.iter_sweep_rows(sweep_id):
            if event["event"] == "row":
                assert event["runner"] == "design"
                rows[event["index"]] = event["row"]
            else:
                end = event
        assert end["state"] == "done"
        assert end["summary"]["jobs"] == len(jobs)
        assert json.dumps(rows) == json.dumps(reference.rows)
        status = client.sweep_status(sweep_id)
        assert status["state"] == "done"
        assert status["rows_done"] == len(jobs)

    def test_stream_offset_resumes_mid_sweep(self, daemon):
        spec = SweepSpec().constants(nr=4).grid(cores=(2, 4, 6, 8))
        client = _client(daemon)
        sweep_id = client.submit_sweep(spec.to_payload(), "design",
                                       mode="serial")
        events = list(client.iter_sweep_rows(sweep_id, start=2))
        indices = [e["index"] for e in events if e["event"] == "row"]
        assert indices == [2, 3]

    def test_submitted_sweep_hits_the_shared_cache(self, daemon, tmp_path):
        spec = SweepSpec().constants(nr=4).grid(cores=(2, 4))
        jobs = spec.jobs("design")
        warm = RemoteCache(tmp_path / "a", daemon.url, timeout_s=5.0,
                           retries=0)
        execute_jobs(jobs, mode="serial", cache=warm)
        client = _client(daemon)
        sweep_id = client.submit_sweep(spec.to_payload(), "design",
                                       mode="serial")
        events = list(client.iter_sweep_rows(sweep_id))
        assert all(e["cached"] for e in events if e["event"] == "row")

    def test_unknown_runner_rejected(self, daemon):
        spec = SweepSpec().grid(a=(1, 2))
        with pytest.raises(ServerUnavailable, match="unknown runner"):
            _client(daemon).submit_sweep(spec.to_payload(), "warp-drive")

    def test_bad_spec_schema_rejected(self, daemon):
        with pytest.raises(ServerUnavailable, match="bad sweep spec"):
            _client(daemon).submit_sweep({"schema": "nope"}, "design")

    def test_empty_job_list_rejected(self, daemon):
        with pytest.raises(ValueError, match="no jobs"):
            daemon.submit("design", [], "serial")

    def test_unknown_sweep_id(self, daemon):
        client = _client(daemon)
        with pytest.raises(ServerUnavailable, match="unknown sweep id"):
            client.sweep_status("sweep-999")
        with pytest.raises(ServerUnavailable, match="unknown sweep id"):
            list(client.iter_sweep_rows("sweep-999"))

    def test_failed_sweep_reports_error(self, daemon):
        # Unbuildable design point: the runner raises inside the run
        # thread, which must surface as a failed state, not a hang.
        spec = SweepSpec().constants(nr=4, kernel="gemm", size=-8)
        client = _client(daemon)
        sweep_id = client.submit_sweep(spec.to_payload(), "simulate",
                                       mode="serial")
        events = list(client.iter_sweep_rows(sweep_id))
        end = events[-1]
        assert end["event"] == "end"
        assert end["state"] == "failed"
        assert "ValueError" in end["error"]
