"""Smoke tests that every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(EXAMPLES_DIR / script), *args],
                          capture_output=True, text=True, timeout=600)


def test_examples_directory_has_required_scripts():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart plus at least three scenario scripts


def test_quickstart_runs_and_reports_efficiency():
    proc = _run("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "GFLOPS/W" in proc.stdout
    assert "numerically correct  : True" in proc.stdout


def test_design_space_exploration_runs():
    proc = _run("design_space_exploration.py", "--target-gflops", "300")
    assert proc.returncode == 0, proc.stderr
    assert "Resulting LAP design point" in proc.stdout
    assert "GFLOPS/W" in proc.stdout


def test_blas_and_factorizations_runs():
    proc = _run("blas_and_factorizations.py")
    assert proc.returncode == 0, proc.stderr
    assert "Cholesky" in proc.stdout
    assert "relative residual" in proc.stdout
    assert "MISMATCH" not in proc.stdout


def test_fft_and_hybrid_core_runs():
    proc = _run("fft_and_hybrid_core.py")
    assert proc.returncode == 0, proc.stderr
    assert "correct=True" in proc.stdout
    assert "hybrid" in proc.stdout


def test_reproduce_paper_tables_single_experiment():
    proc = _run("reproduce_paper_tables.py", "table_4_1", "--max-rows", "4")
    assert proc.returncode == 0, proc.stderr
    assert "== table_4_1 ==" in proc.stdout
