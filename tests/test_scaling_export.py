"""Tests for technology scaling of published numbers and experiment export."""

import json
import pathlib

import pytest

from repro.arch.scaling import (PUBLISHED_MEASUREMENTS, PublishedMeasurement,
                                ScaledMeasurement, scale_measurement,
                                scaled_comparison_rows)
from repro.experiments.export import export_all, export_experiment
from repro.hw.technology import KNOWN_NODES, TECH_45NM


# ----------------------------------------------------------------- scaling
def test_scaling_45nm_measurement_is_identity():
    m = next(x for x in PUBLISHED_MEASUREMENTS if x.node is KNOWN_NODES["45nm"])
    scaled = scale_measurement(m)
    assert scaled.gflops == m.gflops
    assert scaled.area_mm2 == pytest.approx(m.area_mm2)


def test_scaling_90nm_design_shrinks_area_by_4x():
    csx = next(x for x in PUBLISHED_MEASUREMENTS if "CSX" in x.name)
    scaled = scale_measurement(csx, TECH_45NM)
    assert scaled.area_mm2 == pytest.approx(csx.area_mm2 / 4.0)
    assert scaled.power_w < csx.power_w
    assert scaled.gflops == csx.gflops  # same clock, same throughput


def test_scaling_improves_efficiency_metrics():
    cell = next(x for x in PUBLISHED_MEASUREMENTS if "Cell" in x.name)
    scaled = scale_measurement(cell)
    assert scaled.gflops_per_watt > cell.gflops / cell.power_w
    assert scaled.gflops_per_mm2 > cell.gflops / cell.area_mm2


def test_rescaled_frequency_option_raises_throughput():
    gtx = next(x for x in PUBLISHED_MEASUREMENTS if "GTX280" in x.name)
    same_clock = scale_measurement(gtx, rescale_frequency=False)
    retimed = scale_measurement(gtx, rescale_frequency=True)
    assert retimed.gflops > same_clock.gflops
    assert retimed.frequency_ghz > gtx.frequency_ghz


def test_scaled_rows_have_provenance_columns():
    rows = scaled_comparison_rows()
    assert len(rows) == len(PUBLISHED_MEASUREMENTS)
    for row in rows:
        assert row["scaled_node"] == "45nm"
        assert row["published_node"] in ("45nm", "65nm", "90nm")
        assert row["scaled_gflops_per_w"] > 0


def test_scaled_measurement_efficiency_container():
    eff = scale_measurement(PUBLISHED_MEASUREMENTS[0]).efficiency()
    assert "45nm" in eff.label
    assert eff.gflops_per_watt > 0


def test_published_measurement_validation():
    with pytest.raises(ValueError):
        PublishedMeasurement("bad", "GEMM", TECH_45NM, gflops=1.0, power_w=0.0, area_mm2=1.0)
    with pytest.raises(ValueError):
        PublishedMeasurement("bad", "GEMM", TECH_45NM, gflops=1.0, power_w=1.0,
                             area_mm2=1.0, utilization=2.0)


# ------------------------------------------------------------------ export
def test_export_single_experiment_csv(tmp_path):
    path = export_experiment("table_4_1", tmp_path, fmt="csv")
    assert path.exists() and path.suffix == ".csv"
    content = path.read_text()
    assert "level" in content and "bandwidth_words_per_cycle" in content
    assert content.count("\n") >= 9  # header + 8 rows


def test_export_series_experiment_falls_back_to_json(tmp_path):
    path = export_experiment("fig_4_13_4_15", tmp_path, fmt="csv")
    assert path.suffix == ".json"
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "fig_4_13_4_15"
    assert "Penryn_DGEMM" in payload["data"]


def test_export_json_format_for_tabular_data(tmp_path):
    path = export_experiment("table_5_1", tmp_path, fmt="json")
    payload = json.loads(path.read_text())
    assert payload["kind"] == "table"
    assert isinstance(payload["data"], list)


def test_export_rejects_unknown_format_and_id(tmp_path):
    with pytest.raises(ValueError):
        export_experiment("table_4_1", tmp_path, fmt="xml")
    with pytest.raises(KeyError):
        export_experiment("table_nope", tmp_path)


def test_export_all_selected_experiments_writes_manifest(tmp_path):
    manifest = export_all(tmp_path, experiment_ids=["table_3_1", "validation_4_3"])
    assert set(manifest) == {"table_3_1", "validation_4_3"}
    assert (tmp_path / "manifest.json").exists()
    for filename in manifest.values():
        assert (tmp_path / filename).exists()
