"""Equivalence proofs for the figure generators migrated onto repro.engine.

Each ``_legacy_*`` function below is the pre-migration serial
implementation of a figure generator, preserved verbatim (modulo local
imports).  The tests assert that the engine-backed generators return the
same rows — same order, same keys, every value within 1e-9 relative — and
that a warm cache lets any migrated figure regenerate with zero executed
jobs.
"""

from typing import Dict, List

import pytest

from repro.experiments import figures


# --------------------------------------------------- legacy implementations
def _legacy_fig_4_2() -> List[Dict]:
    from repro.models.chip_model import ChipGEMMModel

    rows: List[Dict] = []
    kc_values = [32, 64, 96, 128, 192, 256, 384, 512]
    for num_cores, nr in ((8, 4), (2, 8)):
        model = ChipGEMMModel(num_cores=num_cores, nr=nr)
        rows.extend(model.sweep_onchip_memory_vs_bandwidth(
            n_values=[512, 1024, 2048], kc_values=kc_values))
    return rows


def _legacy_fig_4_3(n: int = 1024) -> List[Dict]:
    from repro.models.chip_model import ChipGEMMModel

    rows: List[Dict] = []
    single_core = ChipGEMMModel(num_cores=1, nr=4)
    kc_values = [32, 64, 128, 256]
    base = None
    for kc in kc_values:
        res = single_core.cycles_onchip(kc, kc, n,
                                        single_core.onchip_bandwidth_words_per_cycle(kc, kc, n))
        if base is None or res.total_cycles < base:
            base = res.total_cycles
    for num_cores, bw_total in ((4, 1), (8, 2), (12, 3), (16, 4),
                                (4, 2), (8, 4), (12, 6), (16, 8),
                                (4, 4), (8, 8), (12, 12), (16, 16),
                                (4, 8), (8, 16), (12, 24), (16, 32)):
        model = ChipGEMMModel(num_cores=num_cores, nr=4)
        for kc in kc_values:
            if num_cores * kc > n:
                continue
            mem_words = model.onchip_memory_words(kc, kc, n)
            res = model.cycles_onchip(kc, kc, n, float(bw_total))
            rows.append({
                "num_cores": num_cores,
                "bw_words_per_cycle": bw_total,
                "onchip_memory_mbytes": mem_words * 8 / 2 ** 20,
                "relative_performance_pct": 100.0 * base / res.total_cycles if base else 0.0,
                "utilization_pct": 100.0 * res.utilization,
            })
    return rows


def _legacy_fig_5_8_5_9() -> List[Dict]:
    from repro.models.blas_model import BlasCoreModel, Level3Operation

    rows: List[Dict] = []
    kc_values = [16, 32, 64, 96, 128, 192, 256, 320, 384, 448, 512]
    for nr in (4, 8):
        model = BlasCoreModel(nr=nr)
        for op in (Level3Operation.SYRK, Level3Operation.TRSM):
            for bw_bytes in (1, 2, 3, 4, 8):
                for kc in kc_values:
                    res = model.utilization(op, mc=kc, kc=kc, n=512,
                                            bandwidth_elements_per_cycle=bw_bytes / 8.0)
                    rows.append({
                        "operation": op.value,
                        "nr": nr,
                        "bandwidth_bytes_per_cycle": bw_bytes,
                        "local_store_kbytes_per_pe": res.local_store_kbytes_per_pe,
                        "utilization_pct": 100.0 * res.utilization,
                    })
    return rows


def _legacy_fig_5_10() -> List[Dict]:
    from repro.models.blas_model import BlasCoreModel

    rows: List[Dict] = []
    kc_values = [16, 32, 64, 96, 128, 192, 256, 320, 384, 448, 512]
    for nr, bw_bytes in ((4, 4), (8, 8)):
        model = BlasCoreModel(nr=nr)
        for kc in kc_values:
            for res in model.compare_operations(mc=kc, kc=kc, n=512,
                                                bandwidth_elements_per_cycle=bw_bytes / 8.0):
                rows.append({
                    "operation": res.operation.value,
                    "nr": nr,
                    "bandwidth_bytes_per_cycle": bw_bytes,
                    "local_store_kbytes_per_pe": res.local_store_kbytes_per_pe,
                    "utilization_pct": 100.0 * res.utilization,
                })
    return rows


def _legacy_fig_6_6_6_7() -> List[Dict]:
    from repro.arch.lap_design import build_pe
    from repro.hw.fpu import Precision
    from repro.hw.sfu import SFUPlacement
    from repro.models.fact_model import (FactorizationKernel,
                                         FactorizationKernelModel, MACExtension)

    model = FactorizationKernelModel(nr=4)
    core_area = 16 * build_pe(Precision.DOUBLE, 1.0, 16.0).area_mm2
    rows: List[Dict] = []
    cases = [
        (FactorizationKernel.VECTOR_NORM,
         [MACExtension.NONE, MACExtension.COMPARATOR, MACExtension.EXPONENT]),
        (FactorizationKernel.LU, [MACExtension.NONE, MACExtension.COMPARATOR]),
    ]
    for kernel, extensions in cases:
        for k in (64, 128, 256):
            for placement in SFUPlacement:
                for ext in extensions:
                    res = model.evaluate(kernel, k, placement, ext)
                    eff = model.efficiency(res, core_area)
                    rows.append({
                        "kernel": kernel.value,
                        "k": k,
                        "sfu": placement.value,
                        "mac_extension": ext.value,
                        "gflops_per_w": eff.gflops_per_watt,
                        "gflops_per_mm2": eff.gflops_per_mm2,
                        "inverse_energy_delay": eff.inverse_energy_delay,
                        "cycles": res.cycles,
                    })
    return rows


CASES = {
    "fig_4_2": (figures.fig_4_2_onchip_bw_vs_memory, _legacy_fig_4_2),
    "fig_4_3": (figures.fig_4_3_performance_vs_cores_and_bw, _legacy_fig_4_3),
    "fig_5_8_5_9": (figures.fig_5_8_5_9_syrk_trsm_utilization, _legacy_fig_5_8_5_9),
    "fig_5_10": (figures.fig_5_10_blas_utilization_comparison, _legacy_fig_5_10),
    "fig_6_6_6_7": (figures.fig_6_6_6_7_factorization_efficiency, _legacy_fig_6_6_6_7),
}


def _assert_rows_equivalent(new_rows, legacy_rows):
    assert len(new_rows) == len(legacy_rows)
    for index, (new, legacy) in enumerate(zip(new_rows, legacy_rows)):
        assert set(new) == set(legacy), f"row {index}: key mismatch"
        for key, legacy_value in legacy.items():
            value = new[key]
            if isinstance(legacy_value, (int, float)) and not isinstance(legacy_value, bool):
                assert value == pytest.approx(legacy_value, rel=1e-9, abs=1e-12), \
                    f"row {index}, metric '{key}'"
            else:
                assert value == legacy_value, f"row {index}, metric '{key}'"


@pytest.fixture(autouse=True)
def _isolated_engine_env(monkeypatch):
    """Figure sweeps run uncached and in their default mode during the proof."""
    monkeypatch.delenv("REPRO_FIGURE_CACHE", raising=False)
    monkeypatch.delenv("REPRO_FIGURE_MODE", raising=False)


@pytest.mark.parametrize("name", sorted(CASES))
def test_migrated_generator_matches_legacy_rows(name):
    migrated, legacy = CASES[name]
    _assert_rows_equivalent(migrated(), legacy())


def test_warm_cache_rerun_executes_zero_jobs(tmp_path, monkeypatch):
    """Acceptance: a warm-cache re-run of a migrated figure runs no jobs."""
    monkeypatch.setenv("REPRO_FIGURE_CACHE", str(tmp_path))
    observed = []
    real_sweep = figures.sweep

    def recording_sweep(jobs, **kwargs):
        result = real_sweep(jobs, **kwargs)
        observed.append(result)
        return result

    monkeypatch.setattr(figures, "sweep", recording_sweep)
    cold = figures.fig_5_10_blas_utilization_comparison()
    warm = figures.fig_5_10_blas_utilization_comparison()
    assert warm == cold
    assert observed[0].executed == observed[0].total > 0
    assert observed[1].executed == 0
    assert observed[1].cached == observed[1].total
