"""Tests for the chip-level analytical model (Chapter 4) and validation (Sec. 4.3)."""

import pytest

from repro.models.chip_model import ChipGEMMModel
from repro.models.validation import (predict_clearspeed_csx_utilization,
                                     predict_fermi_c2050_utilization)


@pytest.fixture
def model():
    return ChipGEMMModel(num_cores=8, nr=4)


def test_hierarchy_requirements_table_has_all_layers(model):
    rows = model.hierarchy_requirements(mc=256, kc=256, n=2048)
    levels = {(r.level, r.overlap) for r in rows}
    assert ("core", "partial") in levels
    assert ("chip", "full") in levels
    assert ("off-chip", "partial") in levels
    assert len(rows) == 8
    for r in rows:
        assert r.bandwidth_words_per_cycle >= 0.0
        assert r.memory_words >= 0.0


def test_chip_memory_formula(model):
    """n^2 + S*mc*kc + 2*kc*n words (partial overlap)."""
    words = model.onchip_memory_words(mc=256, kc=256, n=2048)
    assert words == pytest.approx(2048 ** 2 + 8 * 256 * 256 + 2 * 256 * 2048)


def test_onchip_bandwidth_formula(model):
    """(2S/kc + S/mc) * nr^2 words/cycle."""
    bw = model.onchip_bandwidth_words_per_cycle(mc=20, kc=20)
    assert bw == pytest.approx((2 * 8 / 20 + 8 / 20) * 16)


def test_offchip_bandwidth_formula(model):
    assert model.offchip_bandwidth_words_per_cycle(n=2048) == pytest.approx(2 * 8 * 16 / 2048)
    assert model.offchip_bandwidth_words_per_cycle(n=2048, full_overlap=True) == \
        pytest.approx(4 * 8 * 16 / 2048)


def test_onchip_cycles_reach_full_utilization_with_ample_bandwidth(model):
    res = model.cycles_onchip(mc=256, kc=256, n=2048, onchip_bandwidth_words_per_cycle=1e6)
    assert res.utilization == pytest.approx(1.0)


def test_onchip_utilization_drops_with_starved_bandwidth(model):
    """With small blocks (little reuse) a starved on-chip bus caps utilisation."""
    rich = model.cycles_onchip(32, 32, 2048, 64.0)
    poor = model.cycles_onchip(32, 32, 2048, 1.0)
    assert rich.utilization > poor.utilization
    assert poor.utilization < 0.5


def test_bigger_onchip_memory_reduces_bandwidth_demand(model):
    """Fig. 4.2: bandwidth demand grows as the on-chip memory shrinks."""
    small_block = model.onchip_bandwidth_words_per_cycle(mc=32, kc=32)
    large_block = model.onchip_bandwidth_words_per_cycle(mc=256, kc=256)
    assert small_block > large_block


def test_more_cores_need_more_bandwidth_for_same_utilization():
    """Fig. 4.3: linear core scaling at fixed bandwidth does not scale performance."""
    n = 1024
    four = ChipGEMMModel(num_cores=4, nr=4).cycles_onchip(128, 128, n, 8.0)
    sixteen = ChipGEMMModel(num_cores=16, nr=4).cycles_onchip(128, 128, n, 8.0)
    assert sixteen.utilization < four.utilization


def test_offchip_model_matches_formula(model):
    res = model.cycles_offchip(n=1024, offchip_bandwidth_words_per_cycle=2.0)
    expected_total = 2 * 1024 ** 2 / 2.0 + max(2 * 1024 ** 2 / 2.0, 1024 ** 3 / (8 * 16))
    assert res.total_cycles == pytest.approx(expected_total)
    assert 0.0 < res.utilization <= 1.0


def test_larger_problems_amortize_offchip_traffic(model):
    small = model.cycles_offchip(n=256, offchip_bandwidth_words_per_cycle=2.0)
    large = model.cycles_offchip(n=2048, offchip_bandwidth_words_per_cycle=2.0)
    assert large.utilization > small.utilization


def test_blocked_offchip_bandwidth_grows_as_memory_shrinks(model):
    """Fig. 4.5: halving the resident block raises the external bandwidth demand."""
    full = model.offchip_bandwidth_blocked(n=2048, ns=2048)
    half = model.offchip_bandwidth_blocked(n=2048, ns=1024)
    quarter = model.offchip_bandwidth_blocked(n=2048, ns=512)
    assert full < half < quarter


def test_blocked_offchip_bandwidth_validation(model):
    with pytest.raises(ValueError):
        model.offchip_bandwidth_blocked(n=1024, ns=2048)
    with pytest.raises(ValueError):
        model.offchip_bandwidth_blocked(n=1024, ns=256, k_subblocks=100)


def test_gflops_scaling_with_frequency(model):
    res = model.cycles_offchip(n=1024, offchip_bandwidth_words_per_cycle=4.0)
    assert res.gflops(2.0) == pytest.approx(2.0 * res.gflops(1.0))


def test_sweeps_produce_rows(model):
    # kc = 128 with 8 cores needs 1024 rows of C, so it is skipped for n = 512.
    rows = model.sweep_onchip_memory_vs_bandwidth(n_values=[512, 1024], kc_values=[64, 128])
    assert len(rows) == 3
    rows2 = model.performance_vs_offchip(n=1024, offchip_bandwidths_words=[1.0, 2.0, 4.0])
    assert len(rows2) == 3
    assert rows2[-1]["gflops"] >= rows2[0]["gflops"]


def test_validation_predictions_match_published_utilizations():
    """Sec. 4.3: ~74% predicted for Fermi (70% published), ~83% for CSX (78%)."""
    fermi = predict_fermi_c2050_utilization()
    assert fermi.limiting_resource == "on-chip bandwidth"
    assert 0.70 <= fermi.predicted_utilization <= 0.80
    assert fermi.prediction_error < 0.10

    csx = predict_clearspeed_csx_utilization()
    assert csx.limiting_resource == "off-chip bandwidth"
    assert 0.75 <= csx.predicted_utilization <= 0.90
    assert csx.prediction_error < 0.10


def test_fermi_onchip_demand_near_paper_value():
    """The paper computes ~310 GB/s of on-chip bandwidth demand for Fermi."""
    fermi = predict_fermi_c2050_utilization()
    assert 280.0 <= fermi.required_bandwidth_gb_s <= 340.0


def test_csx_offchip_demand_near_paper_value():
    """The paper computes ~4.7 GB/s of off-chip demand for the CSX at 250 MHz."""
    csx = predict_clearspeed_csx_utilization()
    assert 4.0 <= csx.required_bandwidth_gb_s <= 5.5


def test_model_validation_inputs(model):
    with pytest.raises(ValueError):
        ChipGEMMModel(num_cores=0)
    with pytest.raises(ValueError):
        model.cycles_onchip(0, 256, 2048, 8.0)
    with pytest.raises(ValueError):
        model.cycles_onchip(256, 256, 2048, 0.0)
    with pytest.raises(ValueError):
        model.cycles_offchip(0, 1.0)
    with pytest.raises(ValueError):
        model.cycles_offchip(1024, 0.0)
