"""Tests for the PE and broadcast-bus building blocks of the LAC simulator."""

import pytest

from repro.lac.bus import RowColumnBuses
from repro.lac.pe import PEConfig, ProcessingElement
from repro.lac.stats import AccessCounters


@pytest.fixture
def pe():
    return ProcessingElement(0, 0, PEConfig(store_a_words=32, store_b_words=16,
                                            register_file_words=4, accumulators=2))


def test_store_a_read_write_and_counting(pe):
    pe.write_store_a(3, 1.5)
    assert pe.read_store_a(3) == 1.5
    assert pe.counters.store_a_writes == 1
    assert pe.counters.store_a_reads == 1


def test_store_b_read_write_and_counting(pe):
    pe.write_store_b(5, -2.0)
    assert pe.read_store_b(5) == -2.0
    assert pe.counters.store_b_writes == 1
    assert pe.counters.store_b_reads == 1


def test_register_file_round_trip(pe):
    pe.write_register(2, 7.0)
    assert pe.read_register(2) == 7.0
    assert pe.counters.register_writes == 1
    assert pe.counters.register_reads == 1


def test_out_of_range_addresses_raise(pe):
    with pytest.raises(IndexError):
        pe.read_store_a(32)
    with pytest.raises(IndexError):
        pe.write_store_b(16, 0.0)
    with pytest.raises(IndexError):
        pe.read_register(4)
    with pytest.raises(IndexError):
        pe.get_accumulator(2)


def test_mac_accumulates_in_place(pe):
    pe.set_accumulator(1.0)
    pe.mac(2.0, 3.0)
    pe.mac(1.0, 4.0)
    assert pe.get_accumulator() == pytest.approx(11.0)
    assert pe.counters.mac_ops == 2


def test_multiply_and_multiply_add_count_as_mac_ops(pe):
    assert pe.multiply(3.0, 4.0) == 12.0
    assert pe.multiply_add(2.0, 5.0, 1.0) == 11.0
    assert pe.counters.mac_ops == 2


def test_multiple_accumulators_are_independent(pe):
    pe.set_accumulator(1.0, index=0)
    pe.set_accumulator(10.0, index=1)
    pe.mac(1.0, 1.0, index=0)
    assert pe.get_accumulator(0) == 2.0
    assert pe.get_accumulator(1) == 10.0


def test_pe_config_validation():
    with pytest.raises(ValueError):
        PEConfig(store_a_words=0)
    with pytest.raises(ValueError):
        PEConfig(register_file_words=0)
    with pytest.raises(ValueError):
        PEConfig(accumulators=0)
    with pytest.raises(ValueError):
        PEConfig(mac_pipeline_stages=0)


def test_shared_counters_accumulate_across_pes():
    counters = AccessCounters()
    pe_a = ProcessingElement(0, 0, PEConfig(), counters)
    pe_b = ProcessingElement(0, 1, PEConfig(), counters)
    pe_a.mac(1.0, 1.0)
    pe_b.mac(1.0, 1.0)
    assert counters.mac_ops == 2


# ------------------------------------------------------------------- buses
def test_row_and_column_broadcast_round_trip():
    buses = RowColumnBuses(4)
    buses.drive_row(1, 3.5)
    buses.drive_column(2, -1.0)
    assert buses.read_row(1) == 3.5
    assert buses.read_column(2) == -1.0
    assert buses.counters.row_broadcasts == 1
    assert buses.counters.column_broadcasts == 1


def test_bus_contention_detected():
    buses = RowColumnBuses(4)
    buses.drive_row(0, 1.0)
    with pytest.raises(RuntimeError):
        buses.drive_row(0, 2.0)


def test_reading_idle_bus_is_an_error():
    buses = RowColumnBuses(4)
    with pytest.raises(RuntimeError):
        buses.read_row(0)
    with pytest.raises(RuntimeError):
        buses.read_column(3)


def test_clear_releases_all_buses():
    buses = RowColumnBuses(2)
    buses.broadcast_row_vector([1.0, 2.0])
    buses.broadcast_column_vector([3.0, 4.0])
    buses.clear()
    assert not buses.row_is_driven(0)
    assert not buses.column_is_driven(1)
    buses.drive_row(0, 9.0)  # no contention after clear
    assert buses.read_row(0) == 9.0


def test_vector_broadcast_length_checked():
    buses = RowColumnBuses(4)
    with pytest.raises(ValueError):
        buses.broadcast_row_vector([1.0, 2.0])


def test_bus_index_bounds():
    buses = RowColumnBuses(4)
    with pytest.raises(IndexError):
        buses.drive_row(4, 0.0)
    with pytest.raises(IndexError):
        buses.read_column(-1)
