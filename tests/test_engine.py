"""Tests for the parallel, cached design-space sweep engine."""

import json

import pytest

from repro.engine import (SweepSpec, best_per_metric, code_fingerprint, dominates,
                          execute_jobs, frontier_report, get_runner, pareto_frontier,
                          runner_names, sweep)
from repro.engine.cache import ResultCache
from repro.engine.spec import Job, canonical_params, params_key


# ------------------------------------------------------------------- spec
class TestSweepSpec:
    def test_grid_expands_cartesian_product(self):
        spec = SweepSpec().grid(a=(1, 2, 3), b=(10, 20))
        points = spec.expand()
        assert len(points) == 6
        assert points[0] == {"a": 1, "b": 10}
        assert points[-1] == {"a": 3, "b": 20}

    def test_constants_apply_to_every_point(self):
        spec = SweepSpec().constants(nr=4).grid(cores=(4, 8))
        assert all(p["nr"] == 4 for p in spec.expand())

    def test_zip_axes_vary_together(self):
        spec = SweepSpec().zip(a=(1, 2, 3), b=(10, 20, 30))
        assert spec.expand() == [{"a": 1, "b": 10}, {"a": 2, "b": 20},
                                 {"a": 3, "b": 30}]

    def test_zip_crossed_with_grid(self):
        spec = SweepSpec().grid(c=(0, 1)).zip(a=(1, 2), b=(10, 20))
        assert len(spec) == 4

    def test_zip_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal lengths"):
            SweepSpec().zip(a=(1, 2), b=(10,))

    def test_filter_prunes_points(self):
        spec = SweepSpec().grid(a=(1, 2, 3, 4)).filter(lambda p: p["a"] % 2 == 0)
        assert [p["a"] for p in spec.expand()] == [2, 4]

    def test_duplicate_axis_raises(self):
        with pytest.raises(ValueError, match="already defined"):
            SweepSpec().constants(a=1).grid(a=(1, 2))

    def test_combinators_do_not_mutate_parent(self):
        base = SweepSpec().grid(a=(1, 2))
        extended = base.grid(b=(1, 2, 3))
        assert len(base) == 2
        assert len(extended) == 6

    def test_non_scalar_value_rejected(self):
        with pytest.raises(TypeError, match="scalar"):
            SweepSpec().constants(a={"no": "dicts"})

    def test_expansion_is_deterministic(self):
        make = lambda: SweepSpec().grid(a=(3, 1, 2), b=("x", "y")).expand()
        assert make() == make()


class TestJobHashing:
    def test_key_is_order_insensitive(self):
        j1 = Job.create("design", {"cores": 8, "nr": 4})
        j2 = Job.create("design", {"nr": 4, "cores": 8})
        assert j1 == j2
        assert j1.key == j2.key

    def test_key_differs_across_params_and_runner(self):
        j1 = Job.create("design", {"cores": 8})
        j2 = Job.create("design", {"cores": 16})
        j3 = Job.create("simulate", {"cores": 8})
        assert len({j1.key, j2.key, j3.key}) == 3

    def test_integral_floats_normalised(self):
        assert canonical_params({"nr": 4.0}) == canonical_params({"nr": 4})
        assert params_key("r", {"f": 1.0}) == params_key("r", {"f": 1})
        assert params_key("r", {"f": 1.5}) != params_key("r", {"f": 1})

    def test_jobs_are_hashable(self):
        jobs = SweepSpec().grid(a=(1, 2)).jobs("design")
        assert len(set(jobs)) == 2


# ------------------------------------------------------------------ cache
class TestResultCache:
    def _job(self, **params):
        return Job.create("design", params or {"cores": 8})

    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        job = self._job()
        assert cache.get(job) is None
        cache.put(job, {"gflops": 100.0})
        assert cache.get(job) == {"gflops": 100.0}
        assert cache.hits == 1 and cache.misses == 1
        assert job in cache

    def test_code_version_invalidates(self, tmp_path):
        job = self._job()
        ResultCache(tmp_path, code_version="v1").put(job, {"gflops": 1.0})
        assert ResultCache(tmp_path, code_version="v2").get(job) is None
        assert ResultCache(tmp_path, code_version="v1").get(job) == {"gflops": 1.0}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        job = self._job()
        path = cache.put(job, {"gflops": 1.0})
        path.write_text("{ not json")
        assert cache.get(job) is None
        assert not path.exists()

    def test_foreign_format_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        job = self._job()
        path = cache.put(job, {"gflops": 1.0})
        path.write_text('{"not_row": 1}')
        assert cache.get(job) is None
        assert not path.exists()
        path = cache.put(job, {"gflops": 1.0})
        path.write_text('["valid json, wrong shape"]')
        assert cache.get(job) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        for cores in (4, 8, 16):
            cache.put(self._job(cores=cores), {"cores": cores})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_stats_shape(self, tmp_path):
        stats = ResultCache(tmp_path, code_version="v1").stats()
        assert {"directory", "code_version", "hits", "misses", "entries",
                "evictions", "size_bytes", "max_bytes"} <= set(stats)


# --------------------------------------------------------------- eviction
class TestCacheEviction:
    def _fill(self, cache, count, start=0):
        paths = []
        for i in range(start, start + count):
            job = Job.create("design", {"cores": i})
            paths.append(cache.put(job, {"cores": i, "pad": "x" * 64}))
        return paths

    def _touch_older(self, paths, offset=3600.0):
        """Backdate entry mtimes so LRU order is unambiguous."""
        import os
        import time

        now = time.time()
        for i, path in enumerate(paths):
            os.utime(path, (now - offset + i, now - offset + i))

    def test_prune_by_max_entries_removes_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        paths = self._fill(cache, 6)
        self._touch_older(paths)
        removed = cache.prune(max_entries=2)
        assert removed == 4
        assert len(cache) == 2
        survivors = [p for p in paths if p.exists()]
        assert survivors == paths[-2:]

    def test_prune_by_max_bytes(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        paths = self._fill(cache, 8)
        self._touch_older(paths)
        entry_bytes = paths[0].stat().st_size
        removed = cache.prune(max_bytes=3 * entry_bytes)
        assert removed == 5
        assert cache.size_bytes() <= 3 * entry_bytes
        assert cache.evictions == 5

    def test_prune_without_limits_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        self._fill(cache, 3)
        assert cache.prune() == 0
        assert len(cache) == 3

    def test_get_refreshes_lru_recency(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        paths = self._fill(cache, 4)
        self._touch_older(paths)
        # A hit on the oldest entry must protect it from the next prune.
        oldest = Job.create("design", {"cores": 0})
        assert cache.get(oldest) is not None
        cache.prune(max_entries=1)
        assert cache.get(oldest) is not None

    def test_put_enforces_max_bytes_budget(self, tmp_path):
        probe = ResultCache(tmp_path / "probe", code_version="v1")
        entry_bytes = self._fill(probe, 1)[0].stat().st_size
        cache = ResultCache(tmp_path / "real", code_version="v1",
                            max_bytes=4 * entry_bytes)
        for i in range(12):
            cache.put(Job.create("design", {"cores": i}),
                      {"cores": i, "pad": "x" * 64})
        # Automatic enforcement evicts to the low-water mark (90% of the
        # budget), so the store ends strictly below max_bytes.
        assert cache.size_bytes() <= int(0.9 * 4 * entry_bytes)
        assert cache.evictions >= 8

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, code_version="v1", max_bytes=0)

    def test_env_budget_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "2")
        cache = ResultCache(tmp_path, code_version="v1")
        assert cache.max_bytes == 2 * 1024 * 1024

    def test_env_budget_degrades_on_garbage(self, monkeypatch, capsys):
        from repro.engine.cache import env_max_bytes

        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "lots")
        assert env_max_bytes() is None
        assert "REPRO_CACHE_MAX_MB" in capsys.readouterr().err
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "-3")
        assert env_max_bytes() is None
        monkeypatch.delenv("REPRO_CACHE_MAX_MB")
        assert env_max_bytes() is None


# --------------------------------------------------------------- executor
def _chip_jobs(n_cores=(4, 8, 12, 16), bws=(8, 16, 24)):
    spec = (SweepSpec().constants(nr=4, n=1024, frequency_ghz=1.0)
            .grid(num_cores=n_cores, offchip_bw_bytes_per_cycle=bws))
    return spec.jobs("chip_gemm")


class TestExecutor:
    def test_serial_matches_thread_and_process(self):
        jobs = _chip_jobs()
        serial = execute_jobs(jobs, mode="serial")
        thread = execute_jobs(jobs, mode="thread", max_workers=4)
        process = execute_jobs(jobs, mode="process", max_workers=2)
        assert json.dumps(serial.rows) == json.dumps(thread.rows)
        assert json.dumps(serial.rows) == json.dumps(process.rows)

    def test_rows_follow_job_order(self):
        jobs = _chip_jobs()
        result = execute_jobs(jobs, mode="thread", max_workers=4, batch_size=1)
        for job, row in zip(result.jobs, result.rows):
            params = job.params_dict
            assert row["num_cores"] == params["num_cores"]
            assert row["offchip_bw_bytes_per_cycle"] == params["offchip_bw_bytes_per_cycle"]

    def test_cache_makes_second_run_incremental(self, tmp_path):
        jobs = _chip_jobs()
        cache = ResultCache(tmp_path, code_version="v1")
        cold = execute_jobs(jobs, mode="serial", cache=cache)
        warm = execute_jobs(jobs, mode="serial", cache=cache)
        assert cold.executed == len(jobs) and cold.cached == 0
        assert warm.executed == 0 and warm.cached == len(jobs)
        assert json.dumps(cold.rows) == json.dumps(warm.rows)

    def test_partial_cache_runs_only_missing_jobs(self, tmp_path):
        jobs = _chip_jobs()
        cache = ResultCache(tmp_path, code_version="v1")
        execute_jobs(jobs[:5], mode="serial", cache=cache)
        result = execute_jobs(jobs, mode="serial", cache=cache)
        assert result.cached == 5
        assert result.executed == len(jobs) - 5

    def test_cache_write_failure_keeps_rows_and_disables_cache(self, tmp_path, capsys):
        jobs = _chip_jobs(n_cores=(4, 8), bws=(8, 16))
        cache = ResultCache(tmp_path, code_version="v1")
        original_put = cache.put
        calls = []

        def flaky_put(job, row):
            calls.append(job)
            if len(calls) >= 2:
                raise OSError("disk full")
            return original_put(job, row)

        cache.put = flaky_put
        result = execute_jobs(jobs, mode="serial", cache=cache)
        assert len(result.rows) == len(jobs)
        assert all(row for row in result.rows)
        assert "caching disabled" in capsys.readouterr().err
        assert len(calls) == 2  # caching stopped after the failure

    def test_progress_callback_reaches_total(self):
        jobs = _chip_jobs()
        seen = []
        execute_jobs(jobs, mode="serial", batch_size=2,
                     progress=lambda done, total: seen.append((done, total)))
        assert seen[0] == (0, len(jobs))
        assert seen[-1] == (len(jobs), len(jobs))
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)

    def test_runner_error_propagates(self):
        bad = [Job.create("simulate", {"kernel": "gemm", "size": 10, "nr": 4})]
        with pytest.raises(ValueError, match="multiple of nr"):
            execute_jobs(bad, mode="serial")

    def test_unknown_runner_raises(self):
        with pytest.raises(KeyError, match="unknown runner"):
            execute_jobs([Job.create("nope", {})], mode="serial")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            execute_jobs([], mode="warp")

    def test_explicit_pool_mode_honoured_for_single_shard(self):
        jobs = _chip_jobs(n_cores=(4, 8), bws=(8,))
        result = execute_jobs(jobs, mode="process", batch_size=100)
        assert result.mode == "process"
        assert json.dumps(result.rows) == \
            json.dumps(execute_jobs(jobs, mode="serial").rows)

    def test_runner_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="size must be positive"):
            execute_jobs([Job.create("simulate", {"kernel": "gemm", "size": 0})],
                         mode="serial")

    def test_usable_cache_dir_degrades(self, capsys):
        from repro.engine import usable_cache_dir

        assert usable_cache_dir(None) is None
        assert usable_cache_dir("/proc/nope/x") is None
        assert "running without cache" in capsys.readouterr().err

    def test_usable_cache_dir_passes_through(self, tmp_path):
        from repro.engine import usable_cache_dir

        target = tmp_path / "cache"
        assert usable_cache_dir(target) == str(target)
        assert target.is_dir()

    def test_sweep_wrapper_with_spec(self, tmp_path):
        spec = SweepSpec().constants(nr=4, n=512, frequency_ghz=1.0).grid(
            num_cores=(4, 8), offchip_bw_bytes_per_cycle=(8, 16))
        result = sweep(spec, runner="chip_gemm", mode="serial",
                       cache_dir=str(tmp_path))
        assert result.total == 4
        again = sweep(spec, runner="chip_gemm", mode="serial",
                      cache_dir=str(tmp_path))
        assert again.executed == 0

    def test_sweep_requires_runner_for_spec(self):
        with pytest.raises(ValueError, match="runner"):
            sweep(SweepSpec().grid(a=(1,)))


# ---------------------------------------------------------------- runners
class TestRunners:
    def test_registry_contents(self):
        names = runner_names()
        for expected in ("design", "pe", "simulate", "chip_gemm", "core_gemm",
                         "experiment"):
            assert expected in names

    def test_design_runner_row(self):
        row = get_runner("design")({"cores": 8, "nr": 4, "frequency_ghz": 1.0})
        assert row["cores"] == 8
        assert row["gflops"] > 0
        assert row["gflops_per_w"] > 0
        assert row["gflops_per_mm2"] > 0

    def test_simulate_runner_is_deterministic(self):
        params = {"kernel": "gemm", "size": 8, "nr": 4, "seed": 7}
        r1 = get_runner("simulate")(params)
        r2 = get_runner("simulate")(params)
        assert r1 == r2
        assert r1["mac_ops"] == 8 ** 3

    def test_simulate_runner_reports_fft_points(self):
        row = get_runner("simulate")({"kernel": "fft", "size": 8, "nr": 4})
        assert row["effective_size"] == 64

    def test_experiment_runner_wraps_registry(self):
        row = get_runner("experiment")({"exp_id": "table_4_1"})
        assert row["exp_id"] == "table_4_1"
        assert row["num_rows"] > 0
        assert isinstance(row["data"], list)

    def test_code_fingerprint_mentions_runners(self):
        fp = code_fingerprint()
        assert "repro-" in fp and "simulate=v" in fp


# ----------------------------------------------------------------- pareto
class TestPareto:
    ROWS = [
        {"id": "a", "gflops": 100.0, "gflops_per_w": 10.0, "gflops_per_mm2": 1.0},
        {"id": "b", "gflops": 200.0, "gflops_per_w": 5.0, "gflops_per_mm2": 2.0},
        {"id": "c", "gflops": 50.0, "gflops_per_w": 5.0, "gflops_per_mm2": 0.5},
        {"id": "d", "gflops": 100.0, "gflops_per_w": 10.0, "gflops_per_mm2": 1.0},
    ]

    def test_dominated_rows_removed(self):
        frontier = pareto_frontier(self.ROWS)
        ids = [r["id"] for r in frontier]
        assert "c" not in ids
        assert "a" in ids and "b" in ids

    def test_duplicates_both_survive(self):
        ids = [r["id"] for r in pareto_frontier(self.ROWS)]
        assert "a" in ids and "d" in ids

    def test_dominates(self):
        a, b, c = self.ROWS[0], self.ROWS[1], self.ROWS[2]
        assert dominates(b, c, ("gflops", "gflops_per_w"))
        assert not dominates(a, b, ("gflops", "gflops_per_w"))

    def test_minimize_flips_sense(self):
        rows = [{"cost": 1.0, "perf": 1.0}, {"cost": 2.0, "perf": 1.0}]
        frontier = pareto_frontier(rows, ("cost", "perf"), minimize={"cost"})
        assert frontier == [rows[0]]

    def test_best_per_metric(self):
        best = best_per_metric(self.ROWS)
        assert best["gflops"]["id"] == "b"
        assert best["gflops_per_w"]["id"] == "a"  # first wins ties

    def test_missing_objective_raises(self):
        with pytest.raises(KeyError, match="missing objective"):
            pareto_frontier([{"gflops": 1.0}], ("gflops", "nope"))

    def test_frontier_report_shape(self):
        report = frontier_report(self.ROWS)
        assert report["num_rows"] == 4
        assert report["objectives"] == list(("gflops", "gflops_per_w", "gflops_per_mm2"))
        assert set(report["best"]) == {"gflops", "gflops_per_w", "gflops_per_mm2"}

    def test_empty_rows(self):
        assert pareto_frontier([]) == []
        assert best_per_metric([]) == {}


# ---------------------------------------------------------------- figures
class TestFigureEngineEnv:
    def test_invalid_mode_degrades_with_warning(self, monkeypatch, capsys):
        from repro.experiments.figures import _engine_kwargs

        monkeypatch.setenv("REPRO_FIGURE_MODE", "proces")
        kwargs = _engine_kwargs()
        assert kwargs["mode"] == "auto"
        assert "REPRO_FIGURE_MODE" in capsys.readouterr().err

    def test_unusable_cache_dir_degrades_with_warning(self, monkeypatch, capsys):
        from repro.experiments.figures import _engine_kwargs

        monkeypatch.setenv("REPRO_FIGURE_CACHE", "/proc/nope/x")
        kwargs = _engine_kwargs()
        assert kwargs["cache_dir"] is None
        assert "REPRO_FIGURE_CACHE" in capsys.readouterr().err


# ------------------------------------------------------------- end-to-end
def test_serial_and_parallel_sweeps_are_byte_identical(tmp_path):
    """Acceptance: parallel results are byte-identical to serial results."""
    spec = (SweepSpec().constants(nr=4, frequency_ghz=1.0, seed=0)
            .grid(kernel=("gemm", "syrk", "cholesky"), size=(8, 16)))
    serial = sweep(spec.jobs("simulate"), mode="serial")
    parallel = sweep(spec.jobs("simulate"), mode="process", max_workers=2,
                     batch_size=2)
    assert json.dumps(serial.rows, sort_keys=True) == \
        json.dumps(parallel.rows, sort_keys=True)
