"""Tests for the parallel, cached design-space sweep engine."""

import json

import pytest

from repro.engine import (SweepSpec, best_per_metric, code_fingerprint, dominates,
                          execute_jobs, frontier_report, get_runner, pareto_frontier,
                          runner_names, sweep)
from repro.engine.cache import ResultCache
from repro.engine.spec import Job, canonical_params, params_key


# ------------------------------------------------------------------- spec
class TestSweepSpec:
    def test_grid_expands_cartesian_product(self):
        spec = SweepSpec().grid(a=(1, 2, 3), b=(10, 20))
        points = spec.expand()
        assert len(points) == 6
        assert points[0] == {"a": 1, "b": 10}
        assert points[-1] == {"a": 3, "b": 20}

    def test_constants_apply_to_every_point(self):
        spec = SweepSpec().constants(nr=4).grid(cores=(4, 8))
        assert all(p["nr"] == 4 for p in spec.expand())

    def test_zip_axes_vary_together(self):
        spec = SweepSpec().zip(a=(1, 2, 3), b=(10, 20, 30))
        assert spec.expand() == [{"a": 1, "b": 10}, {"a": 2, "b": 20},
                                 {"a": 3, "b": 30}]

    def test_zip_crossed_with_grid(self):
        spec = SweepSpec().grid(c=(0, 1)).zip(a=(1, 2), b=(10, 20))
        assert len(spec) == 4

    def test_zip_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal lengths"):
            SweepSpec().zip(a=(1, 2), b=(10,))

    def test_filter_prunes_points(self):
        spec = SweepSpec().grid(a=(1, 2, 3, 4)).filter(lambda p: p["a"] % 2 == 0)
        assert [p["a"] for p in spec.expand()] == [2, 4]

    def test_duplicate_axis_raises(self):
        with pytest.raises(ValueError, match="already defined"):
            SweepSpec().constants(a=1).grid(a=(1, 2))

    def test_combinators_do_not_mutate_parent(self):
        base = SweepSpec().grid(a=(1, 2))
        extended = base.grid(b=(1, 2, 3))
        assert len(base) == 2
        assert len(extended) == 6

    def test_non_scalar_value_rejected(self):
        with pytest.raises(TypeError, match="scalar"):
            SweepSpec().constants(a={"no": "dicts"})

    def test_expansion_is_deterministic(self):
        make = lambda: SweepSpec().grid(a=(3, 1, 2), b=("x", "y")).expand()
        assert make() == make()


class TestJobHashing:
    def test_key_is_order_insensitive(self):
        j1 = Job.create("design", {"cores": 8, "nr": 4})
        j2 = Job.create("design", {"nr": 4, "cores": 8})
        assert j1 == j2
        assert j1.key == j2.key

    def test_key_differs_across_params_and_runner(self):
        j1 = Job.create("design", {"cores": 8})
        j2 = Job.create("design", {"cores": 16})
        j3 = Job.create("simulate", {"cores": 8})
        assert len({j1.key, j2.key, j3.key}) == 3

    def test_integral_floats_normalised(self):
        assert canonical_params({"nr": 4.0}) == canonical_params({"nr": 4})
        assert params_key("r", {"f": 1.0}) == params_key("r", {"f": 1})
        assert params_key("r", {"f": 1.5}) != params_key("r", {"f": 1})

    def test_jobs_are_hashable(self):
        jobs = SweepSpec().grid(a=(1, 2)).jobs("design")
        assert len(set(jobs)) == 2


# ------------------------------------------------------------------ cache
class TestResultCache:
    def _job(self, **params):
        return Job.create("design", params or {"cores": 8})

    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        job = self._job()
        assert cache.get(job) is None
        cache.put(job, {"gflops": 100.0})
        assert cache.get(job) == {"gflops": 100.0}
        assert cache.hits == 1 and cache.misses == 1
        assert job in cache

    def test_code_version_invalidates(self, tmp_path):
        job = self._job()
        ResultCache(tmp_path, code_version="v1").put(job, {"gflops": 1.0})
        assert ResultCache(tmp_path, code_version="v2").get(job) is None
        assert ResultCache(tmp_path, code_version="v1").get(job) == {"gflops": 1.0}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        job = self._job()
        path = cache.put(job, {"gflops": 1.0})
        path.write_text("{ not json")
        assert cache.get(job) is None
        assert not path.exists()

    def test_foreign_format_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        job = self._job()
        path = cache.put(job, {"gflops": 1.0})
        path.write_text('{"not_row": 1}')
        assert cache.get(job) is None
        assert not path.exists()
        path = cache.put(job, {"gflops": 1.0})
        path.write_text('["valid json, wrong shape"]')
        assert cache.get(job) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        for cores in (4, 8, 16):
            cache.put(self._job(cores=cores), {"cores": cores})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_stats_shape(self, tmp_path):
        stats = ResultCache(tmp_path, code_version="v1").stats()
        assert {"directory", "code_version", "hits", "misses", "entries",
                "evictions", "size_bytes", "max_bytes"} <= set(stats)


# --------------------------------------------------------------- eviction
class TestCacheEviction:
    def _fill(self, cache, count, start=0):
        paths = []
        for i in range(start, start + count):
            job = Job.create("design", {"cores": i})
            paths.append(cache.put(job, {"cores": i, "pad": "x" * 64}))
        return paths

    def _touch_older(self, paths, offset=3600.0):
        """Backdate entry mtimes so LRU order is unambiguous."""
        import os
        import time

        now = time.time()
        for i, path in enumerate(paths):
            os.utime(path, (now - offset + i, now - offset + i))

    def test_prune_by_max_entries_removes_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        paths = self._fill(cache, 6)
        self._touch_older(paths)
        removed = cache.prune(max_entries=2)
        assert removed == 4
        assert len(cache) == 2
        survivors = [p for p in paths if p.exists()]
        assert survivors == paths[-2:]

    def test_prune_by_max_bytes(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        paths = self._fill(cache, 8)
        self._touch_older(paths)
        entry_bytes = paths[0].stat().st_size
        removed = cache.prune(max_bytes=3 * entry_bytes)
        assert removed == 5
        assert cache.size_bytes() <= 3 * entry_bytes
        assert cache.evictions == 5

    def test_prune_without_limits_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        self._fill(cache, 3)
        assert cache.prune() == 0
        assert len(cache) == 3

    def test_get_refreshes_lru_recency(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        paths = self._fill(cache, 4)
        self._touch_older(paths)
        # A hit on the oldest entry must protect it from the next prune.
        oldest = Job.create("design", {"cores": 0})
        assert cache.get(oldest) is not None
        cache.prune(max_entries=1)
        assert cache.get(oldest) is not None

    def test_put_enforces_max_bytes_budget(self, tmp_path):
        probe = ResultCache(tmp_path / "probe", code_version="v1")
        entry_bytes = self._fill(probe, 1)[0].stat().st_size
        cache = ResultCache(tmp_path / "real", code_version="v1",
                            max_bytes=4 * entry_bytes)
        for i in range(12):
            cache.put(Job.create("design", {"cores": i}),
                      {"cores": i, "pad": "x" * 64})
        # Automatic enforcement evicts to the low-water mark (90% of the
        # budget), so the store ends strictly below max_bytes.
        assert cache.size_bytes() <= int(0.9 * 4 * entry_bytes)
        assert cache.evictions >= 8

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, code_version="v1", max_bytes=0)

    def test_env_budget_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "2")
        cache = ResultCache(tmp_path, code_version="v1")
        assert cache.max_bytes == 2 * 1024 * 1024

    def test_env_budget_degrades_on_garbage(self, monkeypatch, capsys):
        from repro.engine.cache import env_max_bytes

        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "lots")
        assert env_max_bytes() is None
        assert "REPRO_CACHE_MAX_MB" in capsys.readouterr().err
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "-3")
        assert env_max_bytes() is None
        monkeypatch.delenv("REPRO_CACHE_MAX_MB")
        assert env_max_bytes() is None


# --------------------------------------------------------------- executor
def _chip_jobs(n_cores=(4, 8, 12, 16), bws=(8, 16, 24)):
    spec = (SweepSpec().constants(nr=4, n=1024, frequency_ghz=1.0)
            .grid(num_cores=n_cores, offchip_bw_bytes_per_cycle=bws))
    return spec.jobs("chip_gemm")


class TestExecutor:
    def test_serial_matches_thread_and_process(self):
        jobs = _chip_jobs()
        serial = execute_jobs(jobs, mode="serial")
        thread = execute_jobs(jobs, mode="thread", max_workers=4)
        process = execute_jobs(jobs, mode="process", max_workers=2)
        assert json.dumps(serial.rows) == json.dumps(thread.rows)
        assert json.dumps(serial.rows) == json.dumps(process.rows)

    def test_rows_follow_job_order(self):
        jobs = _chip_jobs()
        result = execute_jobs(jobs, mode="thread", max_workers=4, batch_size=1)
        for job, row in zip(result.jobs, result.rows):
            params = job.params_dict
            assert row["num_cores"] == params["num_cores"]
            assert row["offchip_bw_bytes_per_cycle"] == params["offchip_bw_bytes_per_cycle"]

    def test_cache_makes_second_run_incremental(self, tmp_path):
        jobs = _chip_jobs()
        cache = ResultCache(tmp_path, code_version="v1")
        cold = execute_jobs(jobs, mode="serial", cache=cache)
        warm = execute_jobs(jobs, mode="serial", cache=cache)
        assert cold.executed == len(jobs) and cold.cached == 0
        assert warm.executed == 0 and warm.cached == len(jobs)
        assert json.dumps(cold.rows) == json.dumps(warm.rows)

    def test_partial_cache_runs_only_missing_jobs(self, tmp_path):
        jobs = _chip_jobs()
        cache = ResultCache(tmp_path, code_version="v1")
        execute_jobs(jobs[:5], mode="serial", cache=cache)
        result = execute_jobs(jobs, mode="serial", cache=cache)
        assert result.cached == 5
        assert result.executed == len(jobs) - 5

    def test_cache_write_failure_keeps_rows_and_disables_cache(self, tmp_path, capsys):
        jobs = _chip_jobs(n_cores=(4, 8), bws=(8, 16))
        cache = ResultCache(tmp_path, code_version="v1")
        original_put = cache.put
        calls = []

        def flaky_put(job, row):
            calls.append(job)
            if len(calls) >= 2:
                raise OSError("disk full")
            return original_put(job, row)

        cache.put = flaky_put
        result = execute_jobs(jobs, mode="serial", cache=cache)
        assert len(result.rows) == len(jobs)
        assert all(row for row in result.rows)
        assert "caching disabled" in capsys.readouterr().err
        assert len(calls) == 2  # caching stopped after the failure

    def test_progress_callback_reaches_total(self):
        jobs = _chip_jobs()
        seen = []
        execute_jobs(jobs, mode="serial", batch_size=2,
                     progress=lambda done, total: seen.append((done, total)))
        assert seen[0] == (0, len(jobs))
        assert seen[-1] == (len(jobs), len(jobs))
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)

    def test_runner_error_propagates(self):
        bad = [Job.create("simulate", {"kernel": "gemm", "size": 10, "nr": 4})]
        with pytest.raises(ValueError, match="multiple of nr"):
            execute_jobs(bad, mode="serial")

    def test_unknown_runner_raises(self):
        with pytest.raises(KeyError, match="unknown runner"):
            execute_jobs([Job.create("nope", {})], mode="serial")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            execute_jobs([], mode="warp")

    def test_explicit_pool_mode_honoured_for_single_shard(self):
        jobs = _chip_jobs(n_cores=(4, 8), bws=(8,))
        result = execute_jobs(jobs, mode="process", batch_size=100)
        assert result.mode == "process"
        assert json.dumps(result.rows) == \
            json.dumps(execute_jobs(jobs, mode="serial").rows)

    def test_runner_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="size must be positive"):
            execute_jobs([Job.create("simulate", {"kernel": "gemm", "size": 0})],
                         mode="serial")

    def test_usable_cache_dir_degrades(self, capsys):
        from repro.engine import usable_cache_dir

        assert usable_cache_dir(None) is None
        assert usable_cache_dir("/proc/nope/x") is None
        assert "running without cache" in capsys.readouterr().err

    def test_usable_cache_dir_passes_through(self, tmp_path):
        from repro.engine import usable_cache_dir

        target = tmp_path / "cache"
        assert usable_cache_dir(target) == str(target)
        assert target.is_dir()

    def test_sweep_wrapper_with_spec(self, tmp_path):
        spec = SweepSpec().constants(nr=4, n=512, frequency_ghz=1.0).grid(
            num_cores=(4, 8), offchip_bw_bytes_per_cycle=(8, 16))
        result = sweep(spec, runner="chip_gemm", mode="serial",
                       cache_dir=str(tmp_path))
        assert result.total == 4
        again = sweep(spec, runner="chip_gemm", mode="serial",
                      cache_dir=str(tmp_path))
        assert again.executed == 0

    def test_sweep_requires_runner_for_spec(self):
        with pytest.raises(ValueError, match="runner"):
            sweep(SweepSpec().grid(a=(1,)))


# ---------------------------------------------------------------- runners
class TestRunners:
    def test_registry_contents(self):
        names = runner_names()
        for expected in ("design", "pe", "simulate", "chip_gemm", "core_gemm",
                         "experiment"):
            assert expected in names

    def test_design_runner_row(self):
        row = get_runner("design")({"cores": 8, "nr": 4, "frequency_ghz": 1.0})
        assert row["cores"] == 8
        assert row["gflops"] > 0
        assert row["gflops_per_w"] > 0
        assert row["gflops_per_mm2"] > 0

    def test_simulate_runner_is_deterministic(self):
        params = {"kernel": "gemm", "size": 8, "nr": 4, "seed": 7}
        r1 = get_runner("simulate")(params)
        r2 = get_runner("simulate")(params)
        assert r1 == r2
        assert r1["mac_ops"] == 8 ** 3

    def test_simulate_runner_reports_fft_points(self):
        row = get_runner("simulate")({"kernel": "fft", "size": 8, "nr": 4})
        assert row["effective_size"] == 64

    def test_experiment_runner_wraps_registry(self):
        row = get_runner("experiment")({"exp_id": "table_4_1"})
        assert row["exp_id"] == "table_4_1"
        assert row["num_rows"] > 0
        assert isinstance(row["data"], list)

    def test_code_fingerprint_mentions_runners(self):
        fp = code_fingerprint()
        assert "repro-" in fp and "simulate=v" in fp


# ----------------------------------------------------------------- pareto
class TestPareto:
    ROWS = [
        {"id": "a", "gflops": 100.0, "gflops_per_w": 10.0, "gflops_per_mm2": 1.0},
        {"id": "b", "gflops": 200.0, "gflops_per_w": 5.0, "gflops_per_mm2": 2.0},
        {"id": "c", "gflops": 50.0, "gflops_per_w": 5.0, "gflops_per_mm2": 0.5},
        {"id": "d", "gflops": 100.0, "gflops_per_w": 10.0, "gflops_per_mm2": 1.0},
    ]

    def test_dominated_rows_removed(self):
        frontier = pareto_frontier(self.ROWS)
        ids = [r["id"] for r in frontier]
        assert "c" not in ids
        assert "a" in ids and "b" in ids

    def test_duplicates_both_survive(self):
        ids = [r["id"] for r in pareto_frontier(self.ROWS)]
        assert "a" in ids and "d" in ids

    def test_dominates(self):
        a, b, c = self.ROWS[0], self.ROWS[1], self.ROWS[2]
        assert dominates(b, c, ("gflops", "gflops_per_w"))
        assert not dominates(a, b, ("gflops", "gflops_per_w"))

    def test_minimize_flips_sense(self):
        rows = [{"cost": 1.0, "perf": 1.0}, {"cost": 2.0, "perf": 1.0}]
        frontier = pareto_frontier(rows, ("cost", "perf"), minimize={"cost"})
        assert frontier == [rows[0]]

    def test_best_per_metric(self):
        best = best_per_metric(self.ROWS)
        assert best["gflops"]["id"] == "b"
        assert best["gflops_per_w"]["id"] == "a"  # first wins ties

    def test_missing_objective_raises(self):
        with pytest.raises(KeyError, match="missing objective"):
            pareto_frontier([{"gflops": 1.0}], ("gflops", "nope"))

    def test_frontier_report_shape(self):
        report = frontier_report(self.ROWS)
        assert report["num_rows"] == 4
        assert report["objectives"] == list(("gflops", "gflops_per_w", "gflops_per_mm2"))
        assert set(report["best"]) == {"gflops", "gflops_per_w", "gflops_per_mm2"}

    def test_empty_rows(self):
        assert pareto_frontier([]) == []
        assert best_per_metric([]) == {}


# ---------------------------------------------------------------- figures
class TestFigureEngineEnv:
    def test_invalid_mode_degrades_with_warning(self, monkeypatch, capsys):
        from repro.experiments.figures import _engine_kwargs

        monkeypatch.setenv("REPRO_FIGURE_MODE", "proces")
        kwargs = _engine_kwargs()
        assert kwargs["mode"] == "auto"
        assert "REPRO_FIGURE_MODE" in capsys.readouterr().err

    def test_unusable_cache_dir_degrades_with_warning(self, monkeypatch, capsys):
        from repro.experiments.figures import _engine_kwargs

        monkeypatch.setenv("REPRO_FIGURE_CACHE", "/proc/nope/x")
        kwargs = _engine_kwargs()
        assert kwargs["cache_dir"] is None
        assert "REPRO_FIGURE_CACHE" in capsys.readouterr().err


# ------------------------------------------------------------- streaming
class TestStreaming:
    def test_stream_yields_every_job_once(self):
        jobs = _chip_jobs()
        from repro.engine import stream_jobs

        events = list(stream_jobs(jobs, mode="serial"))
        assert sorted(e.index for e in events) == list(range(len(jobs)))
        assert all(not e.cached and e.latency_s is not None for e in events)
        assert all(e.row["num_cores"] == e.job.params_dict["num_cores"]
                   for e in events)

    def test_stream_then_result_matches_run(self, tmp_path):
        jobs = _chip_jobs()
        # Two identically warmed caches, so the streamed and the batch run
        # see the same hit pattern without feeding each other.
        stream_cache = ResultCache(tmp_path / "a", code_version="v1")
        batch_cache = ResultCache(tmp_path / "b", code_version="v1")
        execute_jobs(jobs[:4], mode="serial", cache=stream_cache)
        execute_jobs(jobs[:4], mode="serial", cache=batch_cache)

        from repro.engine import SweepExecutor

        stream = SweepExecutor(mode="thread", max_workers=4,
                               cache=stream_cache).stream(jobs)
        events = list(stream)
        streamed = stream.result()
        batch = execute_jobs(jobs, mode="serial", cache=batch_cache)
        # Stream events reassembled by index equal the job-ordered rows.
        by_index = [None] * len(jobs)
        for event in events:
            assert by_index[event.index] is None
            by_index[event.index] = event.row
        assert json.dumps(by_index) == json.dumps(batch.rows)
        assert json.dumps(streamed.rows) == json.dumps(batch.rows)
        # Telemetry shape matches the batch result.
        assert streamed.executed == batch.executed
        assert streamed.cached == batch.cached == 4
        assert streamed.job_latency_s[:4] == [None] * 4
        assert sum(s["jobs"] for s in streamed.shard_timings) == \
            sum(s["jobs"] for s in batch.shard_timings)
        assert streamed.first_row_s is not None
        assert streamed.last_row_s >= streamed.first_row_s

    def test_cached_rows_stream_first_in_job_order(self, tmp_path):
        jobs = _chip_jobs()
        cache = ResultCache(tmp_path, code_version="v1")
        execute_jobs([jobs[1], jobs[5], jobs[7]], mode="serial", cache=cache)

        from repro.engine import stream_jobs

        events = list(stream_jobs(jobs, mode="serial", cache=cache))
        cached_prefix = [e.index for e in events if e.cached]
        assert cached_prefix == [1, 5, 7]
        assert [e.cached for e in events[:3]] == [True, True, True]
        assert not any(e.cached for e in events[3:])

    def test_result_drains_unconsumed_stream(self):
        jobs = _chip_jobs(n_cores=(4, 8), bws=(8,))
        from repro.engine import stream_jobs

        result = stream_jobs(jobs, mode="serial").result()
        assert result.total == len(jobs)
        assert all(row is not None for row in result.rows)

    def test_adaptive_batches_shrink_to_single_jobs_at_tail(self):
        jobs = _chip_jobs(n_cores=(4, 8, 12, 16), bws=(8, 16, 24))  # 12 jobs
        result = execute_jobs(jobs, mode="thread", max_workers=2)
        sizes = [s["jobs"] for s in result.shard_timings]
        assert sum(sizes) == len(jobs)
        # remaining/(workers*4) starts at ceil(12/8)=2 and decays to 1.
        assert sizes[-1] == 1
        assert max(sizes) <= 2

    def test_fully_cached_run_records_zero_job_shard_entry(self, tmp_path):
        """Bugfix: cache resolution shows up in shard_timings instead of
        leaving a fully-cached run with an empty timing table."""
        jobs = _chip_jobs(n_cores=(4, 8), bws=(8, 16))
        cache = ResultCache(tmp_path, code_version="v1")
        cold = execute_jobs(jobs, mode="serial", cache=cache)
        assert all(s["jobs"] > 0 for s in cold.shard_timings)  # no hits: no entry
        warm = execute_jobs(jobs, mode="serial", cache=cache)
        assert warm.cached == len(jobs)
        assert len(warm.shard_timings) == 1
        entry = warm.shard_timings[0]
        assert entry["shard"] == -1
        assert entry["jobs"] == 0
        assert entry["cached"] == len(jobs)
        assert entry["runner"] == "chip_gemm"
        assert entry["elapsed_s"] == 0.0

    def test_partially_cached_run_records_both_entries(self, tmp_path):
        jobs = _chip_jobs(n_cores=(4, 8), bws=(8, 16))
        cache = ResultCache(tmp_path, code_version="v1")
        execute_jobs(jobs[:2], mode="serial", cache=cache)
        mixed = execute_jobs(jobs, mode="serial", cache=cache)
        zero = [s for s in mixed.shard_timings if s["jobs"] == 0]
        assert len(zero) == 1 and zero[0]["cached"] == 2
        assert sum(s["jobs"] for s in mixed.shard_timings) == 2

    def test_spec_iter_jobs_matches_jobs(self):
        spec = (SweepSpec().constants(nr=4).grid(a=(1, 2, 3))
                .filter(lambda p: p["a"] != 2))
        assert list(spec.iter_jobs("design")) == spec.jobs("design")
        assert list(spec.iter_points()) == spec.expand()


# ------------------------------------------------------ incremental Pareto
class TestIncrementalPareto:
    def _rows(self, vectors):
        return [{"x": float(x), "y": float(y)} for x, y in vectors]

    def test_matches_batch_on_simple_case(self):
        from repro.engine import IncrementalPareto

        rows = self._rows([(1, 1), (2, 2), (0, 3), (2, 2), (3, 0), (1, 2)])
        inc = IncrementalPareto(objectives=("x", "y"))
        inc.update(rows)
        assert inc.frontier() == pareto_frontier(rows, objectives=("x", "y"))
        assert len(inc) == len(pareto_frontier(rows, objectives=("x", "y")))
        assert inc.seen == len(rows)

    def test_minimize_axes_match_batch(self):
        from repro.engine import IncrementalPareto

        rows = self._rows([(1, 5), (2, 3), (3, 4), (2, 3), (4, 1)])
        inc = IncrementalPareto(objectives=("x", "y"), minimize=("y",))
        inc.update(rows)
        assert inc.frontier() == pareto_frontier(rows, objectives=("x", "y"),
                                                 minimize=("y",))

    def test_add_reports_membership(self):
        from repro.engine import IncrementalPareto

        inc = IncrementalPareto(objectives=("x", "y"))
        assert inc.add({"x": 1.0, "y": 1.0}) is True
        assert inc.add({"x": 0.5, "y": 0.5}) is False   # dominated
        assert inc.add({"x": 2.0, "y": 2.0}) is True    # evicts (1, 1)
        assert [r["x"] for r in inc] == [2.0]

    def test_requires_objectives(self):
        from repro.engine import IncrementalPareto

        with pytest.raises(ValueError, match="objective"):
            IncrementalPareto(objectives=())

    def test_missing_objective_raises_keyerror(self):
        from repro.engine import IncrementalPareto

        with pytest.raises(KeyError, match="missing objective"):
            IncrementalPareto(objectives=("nope",)).add({"x": 1.0})


def test_incremental_pareto_equals_batch_property():
    """Hypothesis: IncrementalPareto == pareto_frontier for random row
    streams (duplicates, ties and arbitrary orders included)."""
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.engine import IncrementalPareto

    # Small value grids force plenty of dominance and exact duplicates.
    value = st.integers(min_value=0, max_value=4).map(float)
    rows = st.lists(st.tuples(value, value, value), min_size=0, max_size=40)

    @settings(max_examples=200, deadline=None)
    @given(rows=rows, n_objectives=st.integers(2, 3),
           minimize_y=st.booleans())
    def check(rows, n_objectives, minimize_y):
        objectives = ("x", "y", "z")[:n_objectives]
        minimize = ("y",) if minimize_y else ()
        dicts = [{"x": x, "y": y, "z": z} for x, y, z in rows]
        inc = IncrementalPareto(objectives=objectives, minimize=minimize)
        for row in dicts:
            inc.add(row)
        expected = pareto_frontier(dicts, objectives=objectives,
                                   minimize=minimize)
        assert inc.frontier() == expected

    check()


# ------------------------------------------------- concurrent stats merge
class TestConcurrentStats:
    def test_parallel_persist_stats_loses_no_deltas(self, tmp_path):
        """Many writers folding into one _stats.json keep every delta."""
        import threading

        writers = 8
        per_writer = 5

        def persist(_i):
            cache = ResultCache(tmp_path, code_version="v1")
            cache.hits = per_writer
            cache.misses = per_writer
            cache.persist_stats()

        threads = [threading.Thread(target=persist, args=(i,))
                   for i in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = ResultCache(tmp_path, code_version="v1").lifetime_stats()
        assert final["hits"] == writers * per_writer
        assert final["misses"] == writers * per_writer

    def test_corrupt_stats_file_does_not_crash_merge(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        (tmp_path / "_stats.json").write_text("{torn")
        cache.hits = 3
        cache.persist_stats()
        # The garbled history is replaced; the new deltas survive.
        assert ResultCache(tmp_path, code_version="v1").lifetime_stats()["hits"] == 3

    def test_stale_lock_is_broken(self, tmp_path):
        import os

        lock = tmp_path / "_stats.lock"
        lock.write_text("")
        old = lock.stat().st_atime - 3600
        os.utime(lock, (old, old))
        cache = ResultCache(tmp_path, code_version="v1")
        cache.hits = 2
        cache.persist_stats()
        assert cache.lifetime_stats()["hits"] == 2
        assert not lock.exists()

    def test_contended_lock_defers_merge(self, tmp_path, monkeypatch):
        from repro.engine import cache as cache_module

        monkeypatch.setattr(cache_module, "_STATS_LOCK_ATTEMPTS", 2)
        monkeypatch.setattr(cache_module, "_STATS_LOCK_STALE_S", 3600.0)
        (tmp_path / "_stats.lock").write_text("")  # held by "another" process
        cache = ResultCache(tmp_path, code_version="v1")
        cache.hits = 4
        cache.persist_stats()  # cannot take the lock: deltas stay pending
        assert not (tmp_path / "_stats.json").exists()
        (tmp_path / "_stats.lock").unlink()
        cache.persist_stats()
        assert cache.lifetime_stats()["hits"] == 4


# ----------------------------------------------------- replay sidecar
class TestReplaySidecar:
    def _lap_jobs(self, **overrides):
        base = {"algorithm": "cholesky", "n": 32, "tile": 8, "num_cores": 2,
                "nr": 4, "seed": 3, "timing": "memoized", "verify": False,
                "fast": True}
        base.update(overrides)
        return [Job.create("lap_runtime", base)]

    def test_sidecar_store_roundtrip(self, tmp_path):
        from repro.engine import SidecarStore

        store = SidecarStore(tmp_path / "replay", code_version="v1")
        assert store.get("kind", "mat") is None
        assert store.put("kind", "mat", {"a": 1}) is not None
        assert store.get("kind", "mat") == {"a": 1}
        assert len(store) == 1
        # A different code version is a different namespace.
        other = SidecarStore(tmp_path / "replay", code_version="v2")
        assert other.get("kind", "mat") is None
        # Corruption degrades to a miss and drops the record.
        path = store.path_for("kind", "mat")
        path.write_text("{nope")
        assert store.get("kind", "mat") is None
        assert not path.exists()

    def test_sidecar_survives_cache_clear_and_prune(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        execute_jobs(_chip_jobs(n_cores=(4,), bws=(8,)), mode="serial",
                     cache=cache)
        sidecar = cache.sidecar()
        sidecar.put("kind", "mat", {"a": 1})
        cache.clear()
        cache.prune(max_entries=0)
        assert sidecar.get("kind", "mat") == {"a": 1}
        assert cache.stats()["sidecar"]["entries"] == 1

    def test_replay_shared_across_simulated_processes(self, tmp_path):
        """A schedule recorded under one process's memo replays in a fresh
        process (cleared memo) through the cache's replay sidecar, with
        zero scheduler loops (nothing newly recorded) and identical rows."""
        from repro.engine.runners import _REPLAY_MEMO, configure_worker
        from repro.lap.fastpath import REPLAY_STATS

        cache = ResultCache(tmp_path, code_version="v1")
        try:
            base = execute_jobs(self._lap_jobs(), mode="serial", cache=cache)
            assert base.executed == 1
            assert len(cache.sidecar()) == 1  # recording was published

            _REPLAY_MEMO.clear()  # simulate a brand-new worker process
            before = dict(REPLAY_STATS)
            delta_jobs = self._lap_jobs(bandwidth_gbs=64.0)
            delta = execute_jobs(delta_jobs, mode="serial", cache=cache)
            after = dict(REPLAY_STATS)
            assert after["sidecar_loaded"] == before["sidecar_loaded"] + 1
            assert after["replayed"] == before["replayed"] + 1
            assert after["recorded"] == before["recorded"]  # 0 scheduler loops

            _REPLAY_MEMO.clear()
            configure_worker(None)  # no sidecar: the delta must re-simulate
            resim = execute_jobs(delta_jobs, mode="serial")
            assert json.dumps(delta.rows) == json.dumps(resim.rows)
        finally:
            configure_worker(None)
            _REPLAY_MEMO.clear()

    def test_sidecar_budget_prunes_lru(self, tmp_path, monkeypatch):
        """The replay sidecar evicts least-recently-used records past its
        byte budget, persists the pruned count for `cache stats`, and reads
        its default budget from REPRO_REPLAY_MAX_MB."""
        import os

        from repro.engine import SidecarStore
        from repro.engine.cache import REPLAY_MAX_MB_ENV

        monkeypatch.delenv(REPLAY_MAX_MB_ENV, raising=False)
        root = tmp_path / "replay"
        unbounded = SidecarStore(root, code_version="v1")
        assert unbounded.max_bytes is None
        paths = []
        for i in range(4):
            path = unbounded.put("kind", f"mat{i}", {"pad": "x" * 400})
            os.utime(path, (i + 1.0, i + 1.0))  # deterministic LRU order
            paths.append(path)

        store = SidecarStore(root, code_version="v1", max_bytes=1200)
        removed = store.prune()
        assert removed == 2
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[3].exists()
        assert store.size_bytes() <= 1200
        assert store.evictions == removed
        # Writes enforce the budget themselves (no explicit prune needed).
        big = store.put("kind", "big", {"pad": "y" * 800})
        assert big.exists()
        assert store.size_bytes() <= 1200
        # The lifetime counter survives into fresh instances and the cache
        # stats block (one store is built per ``sidecar()`` call).
        assert SidecarStore(root).lifetime_evictions() == store.evictions
        cache = ResultCache(tmp_path, code_version="v1")
        assert cache.stats()["sidecar"]["evictions"] == store.evictions
        # A get() refreshes recency so hot records survive later prunes.
        assert store.get("kind", "big") is not None
        # Environment knob: megabytes, with junk degrading to unlimited.
        monkeypatch.setenv(REPLAY_MAX_MB_ENV, "2")
        assert SidecarStore(root).max_bytes == 2 * 1024 * 1024
        monkeypatch.setenv(REPLAY_MAX_MB_ENV, "junk")
        assert SidecarStore(root).max_bytes is None

    def test_changed_code_fingerprint_orphans_sidecar(self, tmp_path):
        """A schedule recorded under one code fingerprint is invisible to a
        cache stamped with another (the sidecar key includes the code
        version), so new runner code never replays stale schedules; the
        re-simulation republishes under the new fingerprint."""
        from repro.engine.runners import _REPLAY_MEMO, configure_worker
        from repro.lap.fastpath import REPLAY_STATS

        try:
            old = ResultCache(tmp_path, code_version="fp-old")
            execute_jobs(self._lap_jobs(seed=15), mode="serial", cache=old)
            assert len(old.sidecar()) == 1

            _REPLAY_MEMO.clear()
            new = ResultCache(tmp_path, code_version="fp-new")
            before = dict(REPLAY_STATS)
            execute_jobs(self._lap_jobs(seed=15, bandwidth_gbs=64.0),
                         mode="serial", cache=new)
            after = dict(REPLAY_STATS)
            # Orphaned: nothing loaded from the old namespace, a full
            # scheduler run happened and was republished under fp-new.
            assert after["sidecar_loaded"] == before["sidecar_loaded"]
            assert after["recorded"] == before["recorded"] + 1
            assert after["sidecar_stored"] == before["sidecar_stored"] + 1

            _REPLAY_MEMO.clear()
            before = dict(REPLAY_STATS)
            execute_jobs(self._lap_jobs(seed=15, bandwidth_gbs=32.0),
                         mode="serial", cache=new)
            after = dict(REPLAY_STATS)
            # The fp-new namespace works: the next delta replays from it.
            assert after["sidecar_loaded"] == before["sidecar_loaded"] + 1
            assert after["replayed"] == before["replayed"] + 1
        finally:
            configure_worker(None)
            _REPLAY_MEMO.clear()

    def test_uncached_run_leaves_replay_in_process(self, tmp_path):
        from repro.engine import runners
        from repro.engine.runners import _REPLAY_MEMO, configure_worker

        try:
            _REPLAY_MEMO.clear()
            execute_jobs(self._lap_jobs(seed=9), mode="serial")
            assert runners._WORKER_SIDECAR is None
        finally:
            configure_worker(None)
            _REPLAY_MEMO.clear()


# ------------------------------------------------------------- end-to-end
def test_serial_and_parallel_sweeps_are_byte_identical(tmp_path):
    """Acceptance: parallel results are byte-identical to serial results."""
    spec = (SweepSpec().constants(nr=4, frequency_ghz=1.0, seed=0)
            .grid(kernel=("gemm", "syrk", "cholesky"), size=(8, 16)))
    serial = sweep(spec.jobs("simulate"), mode="serial")
    parallel = sweep(spec.jobs("simulate"), mode="process", max_workers=2,
                     batch_size=2)
    assert json.dumps(serial.rows, sort_keys=True) == \
        json.dumps(parallel.rows, sort_keys=True)


# ------------------------------------------------------ spec serialisation
class TestSpecSerialisation:
    def test_round_trip_preserves_expansion(self):
        spec = (SweepSpec().constants(nr=4, label="a")
                .grid(cores=(2, 4), frequency_ghz=(1.0, 1.4))
                .zip(a=(1, 2), b=(10, 20)))
        rebuilt = SweepSpec.from_payload(spec.to_payload())
        assert rebuilt.expand() == spec.expand()
        # The payload itself is stable under a round trip (same axes, same
        # order), so content-addressed submission is deterministic.
        assert json.dumps(rebuilt.to_payload()) == json.dumps(spec.to_payload())

    def test_payload_survives_json_round_trip(self):
        spec = SweepSpec().constants(x=1.5).grid(a=(1, 2, 3))
        wire = json.loads(json.dumps(spec.to_payload()))
        assert SweepSpec.from_payload(wire).expand() == spec.expand()

    def test_filters_refuse_to_serialise(self):
        spec = SweepSpec().grid(a=(1, 2)).filter(lambda p: p["a"] == 1)
        with pytest.raises(ValueError, match="filter"):
            spec.to_payload()

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            SweepSpec.from_payload({"schema": "nope"})
        with pytest.raises(TypeError, match="mapping"):
            SweepSpec.from_payload(["not", "a", "mapping"])

    def test_malformed_sections_rejected(self):
        from repro.engine.spec import SPEC_SCHEMA

        base = {"schema": SPEC_SCHEMA}
        with pytest.raises(TypeError, match="constants"):
            SweepSpec.from_payload({**base, "constants": [1]})
        with pytest.raises(ValueError, match="grid"):
            SweepSpec.from_payload({**base, "grid": [["a"]]})
        with pytest.raises(ValueError, match="zip"):
            SweepSpec.from_payload({**base, "zip": [[["a"]]]})


# ----------------------------------------------------- executor regressions
class TestExecutorRegressions:
    def test_mixed_runner_cache_hits_get_per_runner_entries(self, tmp_path):
        """Bugfix: a warm mixed-runner sweep records one zero-job cache
        entry per runner instead of charging every hit to one runner."""
        design = SweepSpec().constants(nr=4).grid(cores=(2, 4)).jobs("design")
        chip = _chip_jobs(n_cores=(4,), bws=(8,))
        jobs = design + chip
        cache = ResultCache(tmp_path, code_version="v1")
        execute_jobs(jobs, mode="serial", cache=cache)
        warm = execute_jobs(jobs, mode="serial", cache=cache)
        assert warm.cached == len(jobs)
        zero = [s for s in warm.shard_timings if s["shard"] == -1]
        assert {(s["runner"], s["cached"]) for s in zero} == \
            {("design", 2), ("chip_gemm", 1)}
        assert all(s["jobs"] == 0 for s in zero)

    def test_abandoned_stream_does_not_wait_for_stragglers(self, monkeypatch):
        """Bugfix: breaking out of a stream shuts the pool down without
        draining in-flight batches, so abandoning a sweep is prompt."""
        import time

        from repro.engine import runners as runners_module
        from repro.engine import stream_jobs

        def dawdle(params):
            time.sleep(0.25)
            return {"i": params["i"]}

        monkeypatch.setitem(runners_module.RUNNERS, "dawdle", dawdle)
        jobs = [Job.create("dawdle", {"i": i}) for i in range(12)]
        stream = stream_jobs(jobs, mode="thread", max_workers=2, batch_size=1)
        next(stream)
        started = time.monotonic()
        stream.close()
        # A blocking shutdown would drain the ~10 remaining 0.25 s jobs
        # (seconds); cancelling and not waiting returns immediately.
        assert time.monotonic() - started < 1.0
        result = stream.result()
        assert sum(1 for row in result.rows if row is not None) < len(jobs)

    def test_stream_is_a_context_manager(self, monkeypatch):
        import time

        from repro.engine import runners as runners_module
        from repro.engine import stream_jobs

        def dawdle(params):
            time.sleep(0.25)
            return {"i": params["i"]}

        monkeypatch.setitem(runners_module.RUNNERS, "dawdle", dawdle)
        jobs = [Job.create("dawdle", {"i": i}) for i in range(8)]
        started = time.monotonic()
        with stream_jobs(jobs, mode="thread", max_workers=2,
                         batch_size=1) as stream:
            next(stream)  # abandon after the first row
        assert time.monotonic() - started < 1.5

    def test_broken_pool_fallback_reports_progress_and_tags_shards(
            self, monkeypatch):
        """Bugfix: the serial fallback after a broken process pool reports
        progress per batch and tags its shard entries as fallback work."""
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine import runners as runners_module

        class BrokenPool:
            def __init__(self, max_workers):
                pass

            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("no forks today")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            BrokenPool)
        monkeypatch.setitem(runners_module.RUNNERS, "stub",
                            lambda p: {"i": p["i"]})
        jobs = [Job.create("stub", {"i": i}) for i in range(6)]
        calls = []
        result = execute_jobs(jobs, mode="process", batch_size=2,
                              progress=lambda d, t: calls.append((d, t)))
        assert result.mode == "serial"
        assert [row["i"] for row in result.rows] == list(range(6))
        executed = [s for s in result.shard_timings if s["jobs"] > 0]
        assert len(executed) == 3
        assert all(s.get("fallback") is True for s in executed)
        # Progress: initial cache report, the fallback baseline, then one
        # call per re-run batch -- monotone and ending at (total, total).
        assert calls[-1] == (6, 6)
        assert [d for d, _ in calls] == sorted(d for d, _ in calls)
        assert len(calls) >= 5

    def test_regular_shards_are_not_tagged_fallback(self):
        result = execute_jobs(_chip_jobs(n_cores=(4, 8), bws=(8,)),
                              mode="thread", max_workers=2)
        assert all("fallback" not in s for s in result.shard_timings)
