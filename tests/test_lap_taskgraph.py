"""Tests for the layered task-graph runtime: IR, policies and timing models.

The pre-refactor scheduler's behaviour is pinned by
``tests/goldens/runtime/lap_runtime.json`` (captured from the monolithic
implementation): the greedy policy with functional timing must reproduce
makespan, per-core busy cycles and residuals exactly.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.policies import (POLICIES, CriticalPathPriority, get_policy,
                                policy_names)
from repro.lap.runtime import LAPRuntime
from repro.lap.taskgraph import (AlgorithmsByBlocks, TaskDescriptor, TaskGraph,
                                 TaskKind)
from repro.lap.timing import MemoizedTiming, get_timing_model, timing_names

GOLDEN = (pathlib.Path(__file__).resolve().parent
          / "goldens" / "runtime" / "lap_runtime.json")


def make_runtime(num_cores=2, tile=8, nr=4, **kwargs):
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=num_cores, nr=nr,
                                           onchip_memory_mbytes=1.0))
    return LAPRuntime(lap, tile, **kwargs)


# ------------------------------------------------------------ TaskGraph IR
class TestTaskGraph:
    def test_sequence_protocol_and_lookup(self):
        graph = AlgorithmsByBlocks(tile=8).gemm_tasks(16, 16, 16)
        assert len(graph) == 8
        assert graph[0].task_id == 0
        assert [t.task_id for t in graph] == list(range(8))
        assert graph.task(3).task_id == 3
        assert graph.task_ids == list(range(8))

    def test_adjacency(self):
        graph = AlgorithmsByBlocks(tile=4).cholesky_tasks(8)
        chol = graph[0]
        assert chol.kind is TaskKind.CHOLESKY
        succs = graph.successors(chol.task_id)
        assert all(chol.task_id in graph.task(s).depends_on for s in succs)
        for task in graph:
            assert graph.predecessors(task.task_id) == sorted(set(task.depends_on))

    def test_levels_width_and_critical_path(self):
        graph = AlgorithmsByBlocks(tile=4).cholesky_tasks(16)  # 4x4 tiles
        levels = graph.levels()
        assert sum(len(level) for level in levels) == len(graph)
        assert graph.width() == max(len(level) for level in levels)
        # Right-looking Cholesky: chain CHOL -> TRSM -> update per step.
        nb = 4
        assert graph.critical_path_length() == 3 * (nb - 1) + 1
        # Weighted critical path with zero weights collapses to zero.
        assert graph.critical_path_length(weight=lambda t: 0.0) == 0.0

    def test_kind_counts_and_summary(self):
        graph = AlgorithmsByBlocks(tile=4).cholesky_tasks(12)
        counts = graph.kind_counts()
        assert counts[TaskKind.CHOLESKY] == 3
        assert counts[TaskKind.TRSM_RIGHT_T] == 3
        summary = graph.summary()
        assert summary["num_tasks"] == len(graph)
        assert summary["kind_counts"]["chol"] == 3

    def test_duplicate_and_unknown_ids_rejected(self):
        t0 = TaskDescriptor(0, TaskKind.GEMM, output=(0, 0))
        with pytest.raises(ValueError, match="duplicate task id"):
            TaskGraph([t0, TaskDescriptor(0, TaskKind.GEMM, output=(0, 1))])
        with pytest.raises(ValueError, match="unknown task id"):
            TaskGraph([TaskDescriptor(1, TaskKind.GEMM, output=(0, 0),
                                      depends_on=[7])])

    def test_cycle_detected_by_levels(self):
        t0 = TaskDescriptor(0, TaskKind.GEMM, output=(0, 0), depends_on=[1])
        t1 = TaskDescriptor(1, TaskKind.GEMM, output=(0, 1), depends_on=[0])
        graph = TaskGraph([t0, t1])
        with pytest.raises(ValueError, match="cycle"):
            graph.levels()

    def test_empty_graph_analytics(self):
        graph = TaskGraph([])
        assert graph.width() == 0
        assert graph.critical_path_length() == 0.0
        assert graph.summary()["num_tasks"] == 0


# ------------------------------------------------- blocking validation (nr)
class TestBlockingValidation:
    def test_tile_must_be_multiple_of_nr(self):
        with pytest.raises(ValueError, match="tile size 10 is not a multiple "
                                             "of the core dimension nr=4"):
            AlgorithmsByBlocks(tile=10, nr=4)
        with pytest.raises(ValueError, match="tile size 2 is smaller than the "
                                             "core dimension nr=4"):
            AlgorithmsByBlocks(tile=2, nr=4)
        with pytest.raises(ValueError, match="nr must be >= 2"):
            AlgorithmsByBlocks(tile=8, nr=1)
        # Non-default core dimensions are accepted when compatible.
        assert AlgorithmsByBlocks(tile=16, nr=8).tile == 16

    def test_dimension_errors_name_the_offender(self):
        lib = AlgorithmsByBlocks(tile=8)
        with pytest.raises(ValueError, match="dimension m=12 is not a multiple "
                                             "of the tile size 8"):
            lib.gemm_tasks(m=12, n=16, k=16)
        with pytest.raises(ValueError, match="dimension n=12"):
            lib.cholesky_tasks(n=12)
        with pytest.raises(ValueError, match="dimension n=20"):
            lib.lu_tasks(n=20)
        with pytest.raises(ValueError, match="dimension n=-8 must be positive"):
            lib.qr_tasks(n=-8)

    def test_runtime_rejects_tile_incompatible_with_chip(self):
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=1, nr=8,
                                               onchip_memory_mbytes=1.0))
        with pytest.raises(ValueError, match="nr=8"):
            LAPRuntime(lap, tile=12)


# --------------------------------------------------------- LU and QR graphs
class TestLuQrGraphs:
    def test_lu_graph_shape(self):
        graph = AlgorithmsByBlocks(tile=8).lu_tasks(24)  # 3x3 tiles
        counts = graph.kind_counts()
        assert counts[TaskKind.LU] == 3
        assert counts[TaskKind.TRSM_LOWER] == 3
        assert counts[TaskKind.TRSM_UPPER_RIGHT] == 3
        assert counts[TaskKind.GEMM] == 4 + 1  # 2x2 then 1x1 trailing updates
        ids = {t.task_id for t in graph}
        for t in graph:
            assert all(d in ids and d < t.task_id for d in t.depends_on)

    def test_qr_graph_shape(self):
        graph = AlgorithmsByBlocks(tile=8).qr_tasks(24)  # 3x3 tiles
        counts = graph.kind_counts()
        assert counts[TaskKind.GEQRT] == 3
        assert counts[TaskKind.TSQRT] == 3   # (1,0), (2,0), (2,1)
        assert counts[TaskKind.UNMQR] == 3
        assert counts[TaskKind.TSMQR] == 5   # 2x2 below row 0, 1x1 below row 1
        ids = {t.task_id for t in graph}
        for t in graph:
            assert all(d in ids and d < t.task_id for d in t.depends_on)

    @pytest.mark.parametrize("workload,n,tile", [
        ("lu", 16, 8), ("lu", 24, 8), ("qr", 16, 8), ("qr", 24, 8)])
    def test_lu_qr_execute_end_to_end(self, workload, n, tile):
        runtime = make_runtime(tile=tile)
        stats = runtime.run_workload(workload, n, np.random.default_rng(0))
        assert stats["tasks_executed"] == len(
            runtime.library.build(workload, n))
        assert stats["makespan_cycles"] > 0
        assert stats["residual"] < 1e-10

    def test_lu_requires_no_pivoting(self):
        runtime = make_runtime(tile=8)
        # A generic random operand needs pivoting, which tile LU forbids.
        a = np.random.default_rng(0).random((16, 16))
        shared = runtime.tile_matrix(a, 8)
        tiles = {"A": shared, "B": shared, "C": shared, "L": shared}
        with pytest.raises(ValueError, match="no pivoting"):
            runtime.execute(runtime.library.lu_tasks(16), tiles)

    def test_unknown_workload_raises(self):
        runtime = make_runtime()
        with pytest.raises(ValueError, match="unknown workload 'svd'"):
            runtime.run_workload("svd", 16, np.random.default_rng(0))
        with pytest.raises(ValueError, match="unknown workload"):
            runtime.library.build("svd", 16)


# ------------------------------------------------- pre-refactor equivalence
class TestGoldenEquivalence:
    """Greedy + functional reproduces the monolithic scheduler exactly."""

    @pytest.mark.parametrize("row", json.loads(GOLDEN.read_text()),
                             ids=lambda r: f"{r['algorithm']}-n{r['n']}-"
                                           f"c{r['num_cores']}-s{r['seed']}")
    def test_matches_pre_refactor_golden(self, row):
        runtime = make_runtime(num_cores=row["num_cores"], tile=row["tile"],
                               nr=row["nr"])
        stats = runtime.run_workload(row["algorithm"], row["n"],
                                     np.random.default_rng(row["seed"]))
        assert stats["makespan_cycles"] == row["makespan_cycles"]
        assert stats["per_core_busy_cycles"] == row["per_core_busy_cycles"]
        assert stats["parallel_efficiency"] == row["parallel_efficiency"]
        assert stats["tasks_executed"] == row["tasks_executed"]
        assert stats["residual"] == row["residual"]


# ------------------------------------------------------------- policies
def _schedule_is_valid(runtime, graph):
    """Dependencies respected, per-core intervals non-overlapping."""
    end_by_id = {e.task_id: e.end_cycle for e in runtime.executions}
    by_core = {}
    for execution in runtime.executions:
        task = graph.task(execution.task_id)
        ready = max((end_by_id[d] for d in task.depends_on), default=0)
        assert execution.start_cycle >= ready
        by_core.setdefault(execution.core_index, []).append(
            (execution.start_cycle, execution.end_cycle))
    for intervals in by_core.values():
        intervals.sort()
        for (s0, e0), (s1, e1) in zip(intervals, intervals[1:]):
            assert s1 >= e0
    return True


class TestPolicies:
    def test_registry(self):
        assert policy_names() == sorted(POLICIES) == [
            "affinity", "critical_path", "greedy", "locality", "memory_aware"]
        assert get_policy("greedy").name == "greedy"
        instance = CriticalPathPriority()
        assert get_policy(instance) is instance
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            get_policy("random")

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("workload,n,tile", [
        ("gemm", 16, 8), ("cholesky", 16, 4), ("lu", 16, 8), ("qr", 16, 8)])
    def test_every_policy_schedules_correctly(self, policy, workload, n, tile):
        runtime = make_runtime(tile=tile, policy=policy, timing="memoized")
        stats = runtime.run_workload(workload, n, np.random.default_rng(3))
        # A fresh library restarts task ids at 0, matching the executed graph.
        graph = AlgorithmsByBlocks(tile).build(workload, n)
        assert stats["residual"] < 1e-9
        assert stats["policy"] == policy
        assert _schedule_is_valid(runtime, graph)

    def test_critical_path_never_worse_on_wide_graph(self):
        results = {}
        for policy in ("greedy", "critical_path"):
            runtime = make_runtime(num_cores=4, tile=8, policy=policy,
                                   timing="memoized")
            results[policy] = runtime.run_blocked_cholesky(
                64, np.random.default_rng(0), verify=False)["makespan_cycles"]
        assert results["critical_path"] <= results["greedy"]

    def test_locality_prefers_owner_core_on_ties(self):
        # Two accumulation chains onto one C tile each: under the locality
        # policy a chain stays on the core that holds its accumulator tile.
        runtime = make_runtime(num_cores=2, tile=8, policy="locality")
        runtime.run_blocked_gemm(16, np.random.default_rng(0))
        core_by_tile = {}
        graph = AlgorithmsByBlocks(8).gemm_tasks(16, 16, 16)
        for execution in runtime.executions:
            tile_coord = graph.task(execution.task_id).output
            core_by_tile.setdefault(tile_coord, set()).add(execution.core_index)
        assert all(len(cores) == 1 for cores in core_by_tile.values())


# ------------------------------------------------------------ timing models
class TestTimingModels:
    def test_registry(self):
        assert timing_names() == ["functional", "memoized"]
        model = MemoizedTiming()
        assert get_timing_model(model) is model
        with pytest.raises(ValueError, match="unknown timing model"):
            get_timing_model("oracle")

    @pytest.mark.parametrize("workload,n,tile", [
        ("gemm", 16, 8), ("cholesky", 16, 4), ("lu", 16, 8), ("qr", 16, 8)])
    def test_memoized_matches_functional_makespan(self, workload, n, tile):
        functional = make_runtime(tile=tile)
        memoized = make_runtime(tile=tile, timing="memoized")
        f = functional.run_workload(workload, n, np.random.default_rng(7))
        m = memoized.run_workload(workload, n, np.random.default_rng(7),
                                  verify=False)
        assert m["makespan_cycles"] == f["makespan_cycles"]
        assert m["per_core_busy_cycles"] == f["per_core_busy_cycles"]
        assert m["residual"] is None and f["residual"] is not None

    def test_memoized_verify_keeps_residuals(self):
        runtime = make_runtime(tile=8, timing="memoized")
        stats = runtime.run_blocked_cholesky(32, np.random.default_rng(2),
                                             verify=True)
        assert stats["residual"] is not None
        assert stats["residual"] < 1e-8
        assert runtime.timing.hits > 0  # memoization actually engaged

    def test_memoized_cache_and_stats(self):
        runtime = make_runtime(tile=8, timing="memoized")
        runtime.run_blocked_cholesky(32, np.random.default_rng(0), verify=False)
        timing = runtime.timing
        first_warm = timing.warm_runs
        assert first_warm == 4  # chol, trsm_rt, syrk, gemm at one shape
        assert timing.estimated_functional_seconds() >= timing.warm_seconds
        # A second graph with the same signatures is warm from the start.
        runtime.run_blocked_cholesky(48, np.random.default_rng(1), verify=False)
        assert timing.warm_runs == first_warm
        timing.reset_stats()
        assert timing.hits == 0 and timing.task_counts == {}

    def test_functional_timing_ignores_verify_flag(self):
        runtime = make_runtime(tile=8)
        stats = runtime.run_blocked_gemm(16, np.random.default_rng(0),
                                         verify=False)
        assert stats["residual"] is not None  # data always valid


# ------------------------------------------------- heterogeneous frequencies
class TestHeterogeneousCores:
    def test_faster_core_shortens_makespan(self):
        homo = make_runtime(num_cores=2, tile=4)
        hetero = make_runtime(num_cores=2, tile=4,
                              core_frequencies_ghz=[1.0, 2.0])
        h = homo.run_blocked_cholesky(16, np.random.default_rng(3))
        f = hetero.run_blocked_cholesky(16, np.random.default_rng(3))
        assert f["makespan_cycles"] < h["makespan_cycles"]
        assert f["residual"] == h["residual"]

    def test_faster_cores_accumulate_proportionally_more_work(self):
        """A core clocked k x faster absorbs ~k x the compute cycles on a
        wide graph of identical independent chains (greedy keeps feeding
        whichever core frees up first)."""
        hetero = make_runtime(num_cores=2, tile=8, timing="memoized",
                              core_frequencies_ghz=[1.0, 3.0])
        stats = hetero.run_blocked_gemm(48, np.random.default_rng(0),
                                        verify=False)
        slow, fast = stats["per_core_busy_cycles"]
        assert fast > slow > 0
        # 36 independent 6-task chains over cores at 1 and 3 GHz: the fast
        # core should take close to 3x the tasks (quantisation leaves slack).
        assert 2.0 <= fast / slow <= 4.0
        fast_tasks = sum(1 for e in hetero.executions if e.core_index == 1)
        slow_tasks = sum(1 for e in hetero.executions if e.core_index == 0)
        assert fast_tasks > 2 * slow_tasks

    def test_hetero_makespan_beats_homogeneous_slowest_baseline(self):
        """Upgrading one core must beat the all-slowest-clock baseline."""
        baseline = make_runtime(num_cores=2, tile=8, timing="memoized",
                                core_frequencies_ghz=[1.0, 1.0])
        hetero = make_runtime(num_cores=2, tile=8, timing="memoized",
                              core_frequencies_ghz=[1.0, 2.0])
        b = baseline.run_blocked_cholesky(48, np.random.default_rng(0),
                                          verify=False)
        h = hetero.run_blocked_cholesky(48, np.random.default_rng(0),
                                        verify=False)
        assert h["makespan_cycles"] < b["makespan_cycles"]
        # The compute work itself is frequency-independent (same task set).
        assert sum(h["per_core_busy_cycles"]) == sum(b["per_core_busy_cycles"])

    def test_homogeneous_override_is_identity(self):
        base = make_runtime(num_cores=2, tile=8)
        override = make_runtime(num_cores=2, tile=8,
                                core_frequencies_ghz=[1.0, 1.0])
        b = base.run_blocked_gemm(16, np.random.default_rng(0))
        o = override.run_blocked_gemm(16, np.random.default_rng(0))
        assert b["makespan_cycles"] == o["makespan_cycles"]

    def test_validation(self):
        with pytest.raises(ValueError, match="2 entries for 4 cores"):
            make_runtime(num_cores=4, core_frequencies_ghz=[1.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            make_runtime(num_cores=2, core_frequencies_ghz=[1.0, 0.0])
