"""Tests for the architecture database, design points, breakdowns and hybrid PEs."""

import pytest

from repro.arch.breakdowns import (cpu_penryn_breakdown, efficiency_comparison,
                                   gpu_fermi_breakdown, gpu_tesla_breakdown, lap_breakdown)
from repro.arch.database import (chip_level_specs, core_level_specs,
                                 design_choice_comparison, lap_advantage, lookup)
from repro.arch.hybrid import (PEDesignVariant, build_variant, fft_alternatives_comparison,
                               hybrid_design_comparison)
from repro.arch.lap_design import (build_lac, build_lap, build_pe,
                                   find_sweet_spot_frequency, pe_frequency_sweep)
from repro.hw.fpu import Precision
from repro.hw.sfu import SFUPlacement


# --------------------------------------------------------------- database
def test_database_contains_lap_and_competitors():
    core = core_level_specs()
    chips = chip_level_specs()
    assert any(s.is_lap for s in core)
    assert any(not s.is_lap for s in core)
    assert any(s.is_lap for s in chips)
    assert len(core) >= 10 and len(chips) >= 12


def test_precision_filter_and_lookup():
    dp = chip_level_specs("double")
    assert all(s.precision == "double" for s in dp)
    spec = lookup("Intel Penryn")
    assert spec.scope == "chip"
    with pytest.raises(KeyError):
        lookup("Nonexistent 9000")


def test_lac_beats_gpu_cores_by_an_order_of_magnitude_in_gflops_per_watt():
    """Core-level headline claim of Chapter 3."""
    lac_sp = lookup("LAC (SP)")
    gtx280_sm = lookup("Nvidia GTX280 SM")
    gtx480_sm = lookup("Nvidia GTX480 SM")
    assert lac_sp.gflops_per_watt > 10.0 * gtx280_sm.gflops_per_watt
    assert lac_sp.gflops_per_watt > 10.0 * gtx480_sm.gflops_per_watt


def test_lac_dp_efficiency_vs_cpu_core_is_tens_of_times_better():
    lac_dp = lookup("LAC (DP)")
    cpu = lookup("Intel Core")
    assert lac_dp.gflops_per_watt / cpu.gflops_per_watt > 30.0


def test_chip_level_lap_advantage_over_best_competitor():
    """Chip-level: LAP (DP) should beat every conventional chip; ClearSpeed is
    the closest competitor, still outperformed."""
    assert lap_advantage("chip", "double", "gflops_per_watt") > 1.0
    assert lap_advantage("chip", "single", "gflops_per_watt") > 3.0
    # Against CPUs/GPUs specifically the margin is an order of magnitude.
    lap_dp = lookup("LAP (DP)")
    assert lap_dp.gflops_per_watt > 7.0 * lookup("Nvidia GTX480 (DP)").gflops_per_watt
    assert lap_dp.gflops_per_watt > 20.0 * lookup("Intel Penryn").gflops_per_watt


def test_inverse_energy_delay_ranking():
    lap = lookup("LAP (DP)")
    others = [s for s in chip_level_specs("double") if not s.is_lap]
    assert all(lap.inverse_energy_delay > s.inverse_energy_delay for s in others)


def test_efficiency_conversion_round_trip():
    spec = lookup("Cell SPE")
    eff = spec.efficiency()
    assert eff.gflops_per_watt == pytest.approx(spec.gflops_per_watt, rel=1e-9)
    assert eff.gflops_per_mm2 == pytest.approx(spec.gflops_per_mm2, rel=1e-9)


def test_design_choice_comparison_covers_key_aspects():
    rows = design_choice_comparison()
    aspects = {r["aspect"] for r in rows}
    assert "Instruction pipeline" in aspects
    assert "Register file" in aspects
    assert all({"cpu", "gpu", "lap"} <= set(r.keys()) for r in rows)


# ------------------------------------------------------------ lap design
def test_pe_design_point_area_dominated_by_local_store():
    pe = build_pe(Precision.DOUBLE, 1.0, local_store_kbytes=18.0)
    assert pe.store_a.area_mm2 > 0.5 * pe.area_mm2


def test_pe_frequency_sweep_monotone_power():
    points = pe_frequency_sweep(Precision.DOUBLE, [0.33, 0.95, 1.81])
    powers = [p.total_power_w for p in points]
    assert powers == sorted(powers)


def test_pe_table_row_has_expected_columns():
    row = build_pe(Precision.SINGLE, 1.0).as_table_row()
    for key in ("precision", "frequency_ghz", "area_mm2", "pe_mw", "gflops_per_w"):
        assert key in row
    assert row["precision"] == "SP"


def test_sweet_spot_frequency_near_one_ghz():
    """The dissertation identifies ~1 GHz as the PE design sweet spot."""
    sweet = find_sweet_spot_frequency(Precision.DOUBLE)
    assert 0.5 <= sweet <= 1.6


def test_lac_design_point_efficiency_in_paper_range():
    """A 4x4 DP LAC around 1 GHz should land in the tens of GFLOPS/W."""
    lac = build_lac(nr=4, precision=Precision.DOUBLE, frequency_ghz=1.0)
    eff = lac.efficiency(utilization=0.95)
    assert 20.0 <= eff.gflops_per_watt <= 70.0
    assert eff.gflops_per_mm2 > 5.0


def test_single_precision_core_efficiency_higher_than_double():
    sp = build_lac(nr=4, precision=Precision.SINGLE, frequency_ghz=1.0).efficiency()
    dp = build_lac(nr=4, precision=Precision.DOUBLE, frequency_ghz=1.0).efficiency()
    assert sp.gflops_per_watt > 1.5 * dp.gflops_per_watt


def test_lap_design_point_aggregates_cores_and_memory():
    lap = build_lap(num_cores=8, nr=4, onchip_memory_mbytes=4.0)
    assert lap.num_pes == 128
    assert lap.area_mm2 > 8 * lap.core.area_mm2
    eff = lap.efficiency(utilization=0.9)
    assert eff.gflops == pytest.approx(0.9 * lap.peak_gflops)


def test_builders_validate_inputs():
    with pytest.raises(ValueError):
        build_pe(local_store_kbytes=0.0)
    with pytest.raises(ValueError):
        build_lap(onchip_memory_mbytes=0.0)


# ------------------------------------------------------------ breakdowns
def test_gpu_breakdowns_are_overhead_dominated():
    """Most GPU power goes to structures that do no GEMM arithmetic."""
    for breakdown in (gpu_tesla_breakdown(), gpu_fermi_breakdown()):
        assert breakdown.overhead_fraction() > 0.4


def test_cpu_breakdown_out_of_order_overhead_about_forty_percent():
    cpu = cpu_penryn_breakdown()
    by_comp = cpu.by_component()
    ooo_frontend = by_comp["Out-of-Order Engine"] + by_comp["Frontend (Fetch/Decode)"]
    assert 0.30 <= ooo_frontend / cpu.dynamic_power_w <= 0.50


def test_lap_breakdown_has_no_overhead_components():
    lap = lap_breakdown(470.0, Precision.DOUBLE)
    assert lap.overhead_fraction() == pytest.approx(0.0)
    assert lap.gflops_per_watt > 10.0


def test_equal_throughput_comparison_shows_order_of_magnitude_advantage():
    """Fig. 4.16: the LAP achieves ~10x or better GFLOPS/W at equal throughput."""
    rows = efficiency_comparison()
    assert len(rows) == 4
    for row in rows:
        assert row["advantage"] > 8.0, row["reference"]


def test_lap_breakdown_sizes_core_count_to_target():
    lap = lap_breakdown(940.0, Precision.SINGLE, frequency_ghz=1.4, utilization=0.9)
    assert "LAP-" in lap.label
    assert lap.gflops == pytest.approx(940.0, rel=0.15)
    with pytest.raises(ValueError):
        lap_breakdown(0.0)


# ----------------------------------------------------------------- hybrid
def test_hybrid_variant_capabilities():
    lac = build_variant(PEDesignVariant.DEDICATED_LAC)
    fft = build_variant(PEDesignVariant.DEDICATED_FFT)
    hybrid = build_variant(PEDesignVariant.HYBRID)
    assert lac.supports_gemm and not lac.supports_fft
    assert fft.supports_fft and not fft.supports_gemm
    assert hybrid.supports_gemm and hybrid.supports_fft


def test_hybrid_pays_modest_efficiency_loss():
    """The hybrid runs both workloads with a small (<15%) loss vs dedicated designs."""
    rows = {r["variant"]: r for r in hybrid_design_comparison()}
    lac_gemm_eff = rows["lac"]["gemm_gflops_per_w"]
    hybrid_gemm_eff = rows["hybrid"]["gemm_gflops_per_w"]
    assert hybrid_gemm_eff > 0.80 * lac_gemm_eff
    assert rows["hybrid"]["fft_gflops_per_w"] > 0.0
    assert rows["fft"]["gemm_gflops_per_w"] == 0.0


def test_hybrid_area_larger_than_either_dedicated_design():
    rows = {r["variant"]: r for r in hybrid_design_comparison()}
    assert rows["hybrid"]["area_mm2"] >= rows["fft"]["area_mm2"]
    assert rows["hybrid"]["area_mm2"] >= 0.9 * rows["lac"]["area_mm2"]


def test_fft_alternatives_lac_designs_beat_general_purpose_platforms():
    """Chapter 6: the FFT-capable LAC is an order of magnitude better than CPUs/GPUs."""
    rows = {r["design"]: r["gflops_per_w"] for r in fft_alternatives_comparison()}
    assert rows["LAC-fft"] > 10.0 * rows["General-purpose CPU (45nm)"]
    assert rows["LAC-hybrid"] > 3.0 * rows["GPU SM (45nm)"]


def test_hybrid_power_workload_validation():
    design = build_variant(PEDesignVariant.HYBRID)
    assert design.power_w("idle") < design.power_w("gemm")
    with pytest.raises(ValueError):
        design.power_w("raytracing")
