"""Tests for the LAP-runtime, blocked-factorization and analytical runners.

The LAP-runtime and blocked-factorization runner families drive the
cycle-level simulators, so the core property checked here is that their
jobs round-trip through the serial and the parallel executors with
identical results, and that every row is functionally verified (small
residual against the numpy reference).
"""

import json

import pytest

from repro.engine import (HEAVY_RUNNERS, KNOWN_PARAMS, PARETO_OBJECTIVES,
                          SweepSpec, execute_jobs, get_runner, runner_names)
from repro.engine.runners import RUNNER_VERSIONS
from repro.engine.spec import Job

NEW_RUNNERS = ("chip_gemm_onchip", "blas", "fact_kernel", "lap_runtime",
               "blocked_fact")


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_new_runners_registered(self):
        names = runner_names()
        for name in NEW_RUNNERS:
            assert name in names
            assert name in RUNNER_VERSIONS
            assert name in KNOWN_PARAMS
            assert name in PARETO_OBJECTIVES

    def test_simulator_backed_runners_are_heavy(self):
        assert "lap_runtime" in HEAVY_RUNNERS
        assert "blocked_fact" in HEAVY_RUNNERS
        # The analytical models must stay serial under mode="auto".
        assert "blas" not in HEAVY_RUNNERS
        assert "fact_kernel" not in HEAVY_RUNNERS
        assert "chip_gemm_onchip" not in HEAVY_RUNNERS


# ------------------------------------------------------- analytical runners
class TestChipGemmOnchip:
    def test_matches_model_with_required_bandwidth(self):
        from repro.models.chip_model import ChipGEMMModel

        row = get_runner("chip_gemm_onchip")(
            {"num_cores": 8, "nr": 4, "n": 1024, "kc": 128, "full_overlap": True})
        model = ChipGEMMModel(num_cores=8, nr=4)
        bw = model.onchip_bandwidth_words_per_cycle(128, 128, 1024, True)
        res = model.cycles_onchip(128, 128, 1024, bw, True)
        assert row["onchip_bw_words_per_cycle"] == pytest.approx(bw)
        assert row["total_cycles"] == pytest.approx(res.total_cycles)
        assert row["utilization"] == pytest.approx(res.utilization)

    def test_explicit_bandwidth_limits_utilization(self):
        runner = get_runner("chip_gemm_onchip")
        starved = runner({"num_cores": 8, "nr": 4, "n": 1024, "kc": 128,
                          "onchip_bw_words_per_cycle": 0.5})
        fed = runner({"num_cores": 8, "nr": 4, "n": 1024, "kc": 128})
        assert starved["utilization"] < fed["utilization"]


class TestBlasRunner:
    def test_matches_model(self):
        from repro.models.blas_model import BlasCoreModel, Level3Operation

        row = get_runner("blas")({"operation": "syrk", "nr": 4, "kc": 96,
                                  "n": 512, "bandwidth_bytes_per_cycle": 2})
        res = BlasCoreModel(nr=4).utilization(
            Level3Operation.SYRK, mc=96, kc=96, n=512,
            bandwidth_elements_per_cycle=2 / 8.0)
        assert row["utilization"] == pytest.approx(res.utilization)
        assert row["local_store_kbytes_per_pe"] == pytest.approx(
            res.local_store_kbytes_per_pe)

    def test_unknown_operation_raises(self):
        with pytest.raises(ValueError):
            get_runner("blas")({"operation": "gemv"})


class TestFactKernelRunner:
    def test_matches_model_and_derives_core_area(self):
        from repro.arch.lap_design import build_pe
        from repro.hw.fpu import Precision
        from repro.hw.sfu import SFUPlacement
        from repro.models.fact_model import (FactorizationKernel,
                                             FactorizationKernelModel,
                                             MACExtension)

        row = get_runner("fact_kernel")({"kernel": "lu", "k": 128, "nr": 4,
                                         "sfu": "diag",
                                         "mac_extension": "comparator"})
        model = FactorizationKernelModel(nr=4)
        res = model.evaluate(FactorizationKernel.LU, 128, SFUPlacement.DIAGONAL,
                             MACExtension.COMPARATOR)
        core_area = 16 * build_pe(Precision.DOUBLE, 1.0, 16.0).area_mm2
        eff = model.efficiency(res, core_area)
        assert row["cycles"] == pytest.approx(res.cycles)
        assert row["core_area_mm2"] == pytest.approx(core_area)
        assert row["gflops_per_w"] == pytest.approx(eff.gflops_per_watt)
        assert row["gflops_per_mm2"] == pytest.approx(eff.gflops_per_mm2)

    def test_extension_helps_vector_norm(self):
        runner = get_runner("fact_kernel")
        base = runner({"kernel": "vnorm", "k": 256, "mac_extension": "none"})
        extended = runner({"kernel": "vnorm", "k": 256,
                           "mac_extension": "exponent"})
        assert extended["cycles"] < base["cycles"]


# ------------------------------------------------------- simulator runners
class TestLapRuntimeRunner:
    def test_gemm_row_is_verified_and_balanced(self):
        row = get_runner("lap_runtime")({"algorithm": "gemm", "n": 16,
                                         "tile": 8, "num_cores": 2, "nr": 4,
                                         "seed": 3})
        assert row["tasks_executed"] == 8
        assert row["residual"] < 1e-9
        assert 0.0 < row["parallel_efficiency"] <= 1.0
        assert row["makespan_cycles"] >= row["max_core_busy_cycles"]
        assert row["static_load_balance"] == pytest.approx(1.0)

    def test_cholesky_row_is_verified(self):
        row = get_runner("lap_runtime")({"algorithm": "cholesky", "n": 12,
                                         "tile": 4, "num_cores": 2, "nr": 4,
                                         "seed": 3})
        assert row["tasks_executed"] == 10
        assert row["residual"] < 1e-6
        # The static GEMM panel distribution does not describe a
        # factorization's task graph, so the metric must be null here.
        assert row["static_load_balance"] is None

    @pytest.mark.parametrize("algorithm", ["lu", "qr"])
    def test_lu_and_qr_rows_are_verified(self, algorithm):
        row = get_runner("lap_runtime")({"algorithm": algorithm, "n": 16,
                                         "tile": 8, "num_cores": 2, "nr": 4,
                                         "seed": 3})
        assert row["residual"] < 1e-10
        assert row["makespan_cycles"] > 0
        assert row["critical_path_tasks"] >= 1
        assert row["graph_width"] >= 1
        assert row["static_load_balance"] is None

    @pytest.mark.parametrize("policy", ["greedy", "critical_path", "locality",
                                        "memory_aware"])
    def test_policy_rows_schedule_and_verify(self, policy):
        row = get_runner("lap_runtime")({"algorithm": "cholesky", "n": 16,
                                         "tile": 4, "num_cores": 2, "nr": 4,
                                         "seed": 3, "policy": policy,
                                         "timing": "memoized"})
        assert row["policy"] == policy and row["timing"] == "memoized"
        assert row["residual"] < 1e-8

    def test_memoized_unverified_row_matches_functional_makespan(self):
        runner = get_runner("lap_runtime")
        base = {"algorithm": "cholesky", "n": 16, "tile": 4, "num_cores": 2,
                "seed": 3}
        functional = runner(dict(base))
        memoized = runner({**base, "timing": "memoized", "verify": False})
        assert memoized["makespan_cycles"] == functional["makespan_cycles"]
        assert memoized["residual"] is None

    def test_heterogeneous_core_frequencies(self):
        runner = get_runner("lap_runtime")
        base = {"algorithm": "cholesky", "n": 16, "tile": 4, "num_cores": 2,
                "seed": 3}
        homo = runner(dict(base))
        hetero = runner({**base, "core_frequencies_ghz": "1.0,2.0"})
        assert hetero["core_frequencies_ghz"] == "1,2"
        assert hetero["makespan_cycles"] < homo["makespan_cycles"]
        # The colon form (CLI-friendly: commas split sweep axes) and a real
        # sequence parse to the same clocks; a single value is homogeneous.
        colon = runner({**base, "core_frequencies_ghz": "1.0:2.0"})
        listed = runner({**base, "core_frequencies_ghz": (1.0, 2.0)})
        assert colon == hetero == listed
        single = runner({**base, "core_frequencies_ghz": "1.0"})
        assert single["core_frequencies_ghz"] == "1,1"
        assert single["makespan_cycles"] == homo["makespan_cycles"]

    def test_memory_axes_constrain_the_schedule(self):
        """The on_chip_kb / bandwidth_gbs axes drive spills and stalls."""
        runner = get_runner("lap_runtime")
        base = {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2,
                "seed": 0, "timing": "memoized", "verify": False}
        free = runner(dict(base))
        tight = runner({**base, "on_chip_kb": 4.0, "bandwidth_gbs": 16.0})
        assert free["spill_bytes"] == 0 and free["stall_cycles"] == 0.0
        assert tight["spill_bytes"] > 0 and tight["stall_cycles"] > 0.0
        assert tight["traffic_bytes"] > free["traffic_bytes"]
        assert tight["on_chip_kb"] == 4.0 and tight["bandwidth_gbs"] == 16.0
        assert tight["gflops_per_w"] < free["gflops_per_w"]
        aware = runner({**base, "on_chip_kb": 4.0, "bandwidth_gbs": 16.0,
                        "policy": "memory_aware"})
        assert aware["traffic_bytes"] < tight["traffic_bytes"]

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="lap_runtime algorithm"):
            get_runner("lap_runtime")({"algorithm": "svd"})

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            get_runner("lap_runtime")({"algorithm": "gemm", "policy": "random"})

    def test_is_deterministic(self):
        params = {"algorithm": "gemm", "n": 16, "tile": 8, "num_cores": 2,
                  "seed": 11}
        runner = get_runner("lap_runtime")
        assert runner(dict(params)) == runner(dict(params))


class TestBlockedFactRunner:
    @pytest.mark.parametrize("method", ["cholesky", "lu", "qr"])
    def test_factorization_is_verified(self, method):
        row = get_runner("blocked_fact")({"method": method, "n": 8, "nr": 4,
                                          "seed": 1})
        assert row["residual"] < 1e-8
        assert row["cycles"] > 0
        assert row["model_panel_cycles"] > 0
        assert 0.0 < row["utilization"] <= 1.0

    def test_comparator_extension_saves_lu_cycles(self):
        runner = get_runner("blocked_fact")
        with_ext = runner({"method": "lu", "n": 8, "seed": 0,
                           "use_extension": True})
        without = runner({"method": "lu", "n": 8, "seed": 0,
                          "use_extension": False})
        assert with_ext["cycles"] < without["cycles"]
        assert with_ext["residual"] < 1e-9 and without["residual"] < 1e-9

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="blocked_fact method"):
            get_runner("blocked_fact")({"method": "svd"})


# ---------------------------------------------------- executor round-trips
def _new_runner_jobs():
    """A mixed job list touching both new simulator runner families."""
    jobs = (SweepSpec()
            .constants(tile=8, num_cores=2, nr=4, seed=0)
            .grid(algorithm=("gemm",), n=(16, 24))
            .jobs("lap_runtime"))
    jobs += (SweepSpec()
             .constants(algorithm="cholesky", tile=4, num_cores=2, nr=4, seed=0)
             .grid(n=(8, 12))
             .jobs("lap_runtime"))
    jobs += (SweepSpec()
             .constants(tile=8, num_cores=2, nr=4, seed=0, n=16,
                        timing="memoized")
             .grid(algorithm=("lu", "qr"),
                   policy=("critical_path", "locality"))
             .jobs("lap_runtime"))
    jobs += (SweepSpec()
             .constants(nr=4, seed=0)
             .grid(method=("cholesky", "lu", "qr"), n=(8,))
             .jobs("blocked_fact"))
    return jobs


def test_serial_thread_and_process_rows_identical():
    """Acceptance: new runner families round-trip through every executor."""
    jobs = _new_runner_jobs()
    serial = execute_jobs(jobs, mode="serial")
    thread = execute_jobs(jobs, mode="thread", max_workers=4, batch_size=2)
    process = execute_jobs(jobs, mode="process", max_workers=2, batch_size=2)
    assert json.dumps(serial.rows, sort_keys=True) == \
        json.dumps(thread.rows, sort_keys=True)
    assert json.dumps(serial.rows, sort_keys=True) == \
        json.dumps(process.rows, sort_keys=True)


def test_new_runners_cache_roundtrip(tmp_path):
    from repro.engine.cache import ResultCache

    jobs = _new_runner_jobs()
    cache = ResultCache(tmp_path, code_version="v1")
    cold = execute_jobs(jobs, mode="serial", cache=cache)
    warm = execute_jobs(jobs, mode="serial", cache=cache)
    assert cold.executed == len(jobs)
    assert warm.executed == 0 and warm.cached == len(jobs)
    assert json.dumps(cold.rows) == json.dumps(warm.rows)


def test_auto_mode_picks_pool_for_new_heavy_runners():
    from repro.engine.executor import SweepExecutor

    jobs = [Job.create("lap_runtime", {"algorithm": "gemm", "n": 16, "tile": 8,
                                       "num_cores": 2, "seed": s})
            for s in range(3)]
    executor = SweepExecutor(mode="auto")
    mode = executor._resolve_mode([(i, j) for i, j in enumerate(jobs)], workers=4)
    assert mode == "process"
