"""Tests for the experiment registry, generators and the report renderer."""

import pytest

from repro.experiments.registry import REGISTRY, get_experiment, list_experiments, run_experiment
from repro.experiments.report import format_value, render_series, render_table, summarize_experiment


def test_registry_covers_every_planned_experiment():
    """DESIGN.md lists these experiment ids; all must be registered."""
    expected = {
        "table_3_1", "fig_3_4", "fig_3_5", "fig_3_6", "table_3_2",
        "table_4_1", "fig_4_2", "fig_4_3", "fig_4_5", "fig_4_6", "validation_4_3",
        "fig_4_7_4_8", "fig_4_9_4_10", "fig_4_11_4_12", "fig_4_13_4_15", "fig_4_16",
        "table_4_2", "table_4_3",
        "fig_5_8_5_9", "fig_5_10", "table_5_1",
        "fig_6_5", "fig_6_6_6_7", "table_a_2",
        "table_6_2", "fig_6_9", "table_b_1", "fig_b_5_b_7", "table_b_2", "table_b_3",
    }
    assert expected <= set(REGISTRY.keys())


def test_every_experiment_has_metadata():
    for exp in REGISTRY.values():
        assert exp.kind in ("table", "figure", "validation")
        assert exp.source
        assert exp.description
        assert callable(exp.generator)


@pytest.mark.parametrize("exp_id", sorted(REGISTRY.keys()))
def test_every_experiment_runs_and_produces_data(exp_id):
    data = run_experiment(exp_id)
    if isinstance(data, dict):
        assert len(data) > 0
    else:
        assert len(list(data)) > 0


def test_lookup_helpers():
    exp = get_experiment("table_3_1")
    assert exp.exp_id == "table_3_1"
    with pytest.raises(KeyError):
        get_experiment("table_99_9")
    tables = list_experiments("table")
    figures = list_experiments("figure")
    assert all(e.kind == "table" for e in tables)
    assert all(e.kind == "figure" for e in figures)
    assert len(tables) + len(figures) + len(list_experiments("validation")) == len(REGISTRY)


def test_format_value_handles_types():
    assert format_value(True) == "Y"
    assert format_value(False) == "N"
    assert format_value(0.0) == "0"
    assert format_value(3.14159, precision=2) == "3.14"
    assert format_value(1.5e7) == "1.50e+07"
    assert format_value("text") == "text"


def test_render_table_formats_rows():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
    text = render_table(rows)
    assert "a" in text and "b" in text
    assert "10" in text and "0.25" in text
    assert render_table([]) == "(empty table)"


def test_render_table_truncates_long_tables():
    rows = [{"x": i} for i in range(100)]
    text = render_table(rows, max_rows=5)
    assert "95 more rows" in text


def test_render_series_and_summary():
    series = {"GPU": {"FPU": 0.1, "RF": 0.2}, "LAP": {"MAC": 0.02}}
    text = render_series(series)
    assert "GPU:" in text and "MAC" in text
    summary_table = summarize_experiment("table_x", [{"a": 1}])
    assert "== table_x ==" in summary_table
    summary_series = summarize_experiment("fig_y", series)
    assert "LAP:" in summary_series
    summary_other = summarize_experiment("misc", 42)
    assert "42" in summary_other


def test_validation_experiment_reports_small_errors():
    rows = run_experiment("validation_4_3")
    assert len(rows) == 2
    for row in rows:
        assert row["prediction_error_pct"] < 10.0
