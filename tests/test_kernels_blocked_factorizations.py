"""Tests for the blocked LU / QR drivers and the 2D FFT kernel."""

import numpy as np
import pytest

from repro.kernels.blocked_factorizations import (lac_lu_blocked, lac_qr_blocked,
                                                  lu_blocked_reconstruct, qr_blocked_q)
from repro.kernels.fft2d import lac_fft2d
from repro.lac.core import LinearAlgebraCore


@pytest.fixture
def rng():
    return np.random.default_rng(31)


# ------------------------------------------------------------- blocked LU
@pytest.mark.parametrize("n", [4, 8, 12])
def test_blocked_lu_reconstructs_permuted_input(rng, n):
    a = rng.random((n, n)) + n * np.eye(n)
    result = lac_lu_blocked(LinearAlgebraCore(), a)
    l, u = lu_blocked_reconstruct(result.output)
    permuted = a[result.extra["permutation"], :]
    np.testing.assert_allclose(l @ u, permuted, rtol=1e-9, atol=1e-10)


def test_blocked_lu_multipliers_bounded_by_pivoting(rng):
    a = rng.random((12, 12))
    result = lac_lu_blocked(LinearAlgebraCore(), a)
    l, _ = lu_blocked_reconstruct(result.output)
    assert np.max(np.abs(np.tril(l, -1))) <= 1.0 + 1e-12


def test_blocked_lu_solves_linear_system(rng):
    n = 8
    a = rng.random((n, n)) + n * np.eye(n)
    b = rng.random(n)
    result = lac_lu_blocked(LinearAlgebraCore(), a)
    l, u = lu_blocked_reconstruct(result.output)
    perm = result.extra["permutation"]
    # Solve A x = b via P A = L U  =>  x = U^{-1} L^{-1} (P b).
    y = np.linalg.solve(l, b[perm])
    x = np.linalg.solve(u, y)
    np.testing.assert_allclose(a @ x, b, rtol=1e-8, atol=1e-9)


def test_blocked_lu_agrees_with_scipy_style_reference(rng):
    a = rng.random((8, 8))
    result = lac_lu_blocked(LinearAlgebraCore(), a)
    l, u = lu_blocked_reconstruct(result.output)
    # |det(A)| = prod |u_ii| regardless of the permutation.
    assert np.prod(np.abs(np.diag(u))) == pytest.approx(abs(np.linalg.det(a)), rel=1e-9)


def test_blocked_lu_validation(rng):
    with pytest.raises(ValueError):
        lac_lu_blocked(LinearAlgebraCore(), rng.random((8, 6)))
    with pytest.raises(ValueError):
        lac_lu_blocked(LinearAlgebraCore(), rng.random((6, 6)))


# ------------------------------------------------------------- blocked QR
@pytest.mark.parametrize("m,n", [(8, 4), (8, 8), (16, 8)])
def test_blocked_qr_reconstructs_input(rng, m, n):
    a = rng.random((m, n))
    result = lac_qr_blocked(LinearAlgebraCore(), a)
    q = qr_blocked_q(result.output, result.extra["tau"])
    r = np.triu(result.output[:n, :])
    reconstructed = q[:, :m] @ np.vstack([r, np.zeros((m - n, n))])
    np.testing.assert_allclose(reconstructed, a, rtol=1e-9, atol=1e-9)


def test_blocked_qr_q_is_orthogonal(rng):
    a = rng.random((12, 8))
    result = lac_qr_blocked(LinearAlgebraCore(), a)
    q = qr_blocked_q(result.output, result.extra["tau"])
    np.testing.assert_allclose(q.T @ q, np.eye(q.shape[0]), atol=1e-9)


def test_blocked_qr_r_matches_numpy_up_to_signs(rng):
    a = rng.random((16, 8))
    result = lac_qr_blocked(LinearAlgebraCore(), a)
    r = np.triu(result.output[:8, :])
    r_np = np.linalg.qr(a, mode="r")
    np.testing.assert_allclose(np.abs(r), np.abs(r_np), rtol=1e-8, atol=1e-9)


def test_blocked_qr_validation(rng):
    with pytest.raises(ValueError):
        lac_qr_blocked(LinearAlgebraCore(), rng.random((4, 8)))
    with pytest.raises(ValueError):
        lac_qr_blocked(LinearAlgebraCore(), rng.random((8, 6)))


# ----------------------------------------------------------------- 2D FFT
@pytest.mark.parametrize("n", [4, 16])
def test_fft2d_matches_numpy(rng, n):
    x = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    result = lac_fft2d(LinearAlgebraCore(), x)
    np.testing.assert_allclose(result.output, np.fft.fft2(x), rtol=1e-9, atol=1e-9)


def test_fft2d_impulse_response(rng):
    x = np.zeros((16, 16), dtype=complex)
    x[0, 0] = 1.0
    result = lac_fft2d(LinearAlgebraCore(), x)
    np.testing.assert_allclose(result.output, np.ones((16, 16), dtype=complex), atol=1e-12)


def test_fft2d_counts_transpose_traffic(rng):
    x = rng.standard_normal((16, 16)) + 0j
    result = lac_fft2d(LinearAlgebraCore(), x)
    # Transpose between the passes moves every point in and out once.
    assert result.counters.external_loads >= 2 * 16 * 16
    assert result.counters.external_stores >= 2 * 16 * 16


def test_fft2d_validation(rng):
    with pytest.raises(ValueError):
        lac_fft2d(LinearAlgebraCore(), rng.standard_normal((8, 16)))
    with pytest.raises(ValueError):
        lac_fft2d(LinearAlgebraCore(), rng.standard_normal((8, 8)))  # 8 not a power of 4
