"""Tests for the special function unit (divide / sqrt / reciprocal) options."""

import math

import pytest

from repro.hw.fpu import Precision
from repro.hw.sfu import (GoldschmidtDivider, SFUPlacement, SpecialFunctionUnit, SpecialOp,
                          inverse_sqrt_reference, reciprocal_reference)


def test_goldschmidt_iteration_counts():
    sp = GoldschmidtDivider(precision=Precision.SINGLE, seed_bits=13)
    dp = GoldschmidtDivider(precision=Precision.DOUBLE, seed_bits=13)
    assert sp.iterations == 1   # 13 -> 26 >= 24
    assert dp.iterations == 3   # 13 -> 26 -> 52 -> 104 >= 53


def test_goldschmidt_latency_grows_with_precision():
    sp = GoldschmidtDivider(precision=Precision.SINGLE)
    dp = GoldschmidtDivider(precision=Precision.DOUBLE)
    assert dp.latency_cycles(SpecialOp.RECIPROCAL) > sp.latency_cycles(SpecialOp.RECIPROCAL)


def test_sqrt_flavours_cost_more_than_reciprocal():
    div = GoldschmidtDivider(precision=Precision.DOUBLE)
    assert div.latency_cycles(SpecialOp.INV_SQRT) > div.latency_cycles(SpecialOp.RECIPROCAL)
    assert div.mac_operations(SpecialOp.SQRT) > div.mac_operations(SpecialOp.DIVIDE)


def test_goldschmidt_rejects_tiny_seed():
    with pytest.raises(ValueError):
        GoldschmidtDivider(seed_bits=2)


@pytest.mark.parametrize("placement", list(SFUPlacement))
def test_latency_positive_for_all_placements(placement):
    sfu = SpecialFunctionUnit(placement=placement)
    for op in SpecialOp:
        assert sfu.latency_cycles(op) > 0


def test_software_placement_is_slowest_and_free_in_area():
    sw = SpecialFunctionUnit(placement=SFUPlacement.SOFTWARE)
    iso = SpecialFunctionUnit(placement=SFUPlacement.ISOLATED)
    diag = SpecialFunctionUnit(placement=SFUPlacement.DIAGONAL)
    assert sw.area_mm2 == 0.0
    assert iso.area_mm2 > 0.0
    assert diag.area_mm2 > 0.0
    assert sw.latency_cycles(SpecialOp.RECIPROCAL) > iso.latency_cycles(SpecialOp.RECIPROCAL)


def test_software_placement_occupies_the_pe_mac():
    assert SpecialFunctionUnit(placement=SFUPlacement.SOFTWARE).occupies_pe_mac()
    assert not SpecialFunctionUnit(placement=SFUPlacement.ISOLATED).occupies_pe_mac()
    assert not SpecialFunctionUnit(placement=SFUPlacement.DIAGONAL).occupies_pe_mac()


def test_diagonal_area_scales_with_core_dimension():
    small = SpecialFunctionUnit(placement=SFUPlacement.DIAGONAL, nr=4)
    big = SpecialFunctionUnit(placement=SFUPlacement.DIAGONAL, nr=8)
    assert big.area_mm2 == pytest.approx(2.0 * small.area_mm2)


def test_energy_per_op_positive_and_finite():
    for placement in SFUPlacement:
        sfu = SpecialFunctionUnit(placement=placement)
        e = sfu.energy_per_op_j(SpecialOp.INV_SQRT)
        assert 0.0 < e < 1e-6


def test_isolated_unit_idle_power_nonzero_software_zero():
    assert SpecialFunctionUnit(placement=SFUPlacement.ISOLATED).idle_power_w > 0.0
    assert SpecialFunctionUnit(placement=SFUPlacement.SOFTWARE).idle_power_w == 0.0


def test_reference_helpers():
    assert reciprocal_reference(4.0) == pytest.approx(0.25)
    assert inverse_sqrt_reference(4.0) == pytest.approx(0.5)
    with pytest.raises(ZeroDivisionError):
        reciprocal_reference(0.0)
    with pytest.raises(ValueError):
        inverse_sqrt_reference(-1.0)


def test_describe_mentions_placement():
    text = SpecialFunctionUnit(placement=SFUPlacement.DIAGONAL).describe()
    assert "diag" in text
