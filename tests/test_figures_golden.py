"""Golden-value regression suite for every figure generator.

Each registered figure experiment has a JSON snapshot under
``tests/goldens/``; the tests regenerate the figure data and compare it
against the snapshot with per-metric relative tolerances, so any refactor
that drifts a reproduced number fails mechanically instead of silently.

Refreshing the snapshots after an intentional model change::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_figures_golden.py

The updated files under ``tests/goldens/`` are then reviewed and committed
like any other code change.
"""

import json
import math
import os
import pathlib

import numpy as np
import pytest

from repro.experiments.registry import REGISTRY, run_experiment

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "goldens"

UPDATE_ENV = "REPRO_UPDATE_GOLDENS"

#: Default relative tolerance for numeric comparisons.  The generators are
#: deterministic, so this only has to absorb cross-platform floating-point
#: differences (libm, FMA contraction, summation order in BLAS).
DEFAULT_RTOL = 1e-6

#: Per-metric overrides: looser bounds for metrics derived from long
#: floating-point reductions or ratios of near-equal quantities.
METRIC_RTOL = {
    "relative_performance_pct": 1e-5,
    "prediction_error_pct": 1e-5,
    "inverse_energy_delay": 1e-5,
    "energy_delay": 1e-5,
}

FIGURE_IDS = sorted(exp_id for exp_id, exp in REGISTRY.items()
                    if exp.kind == "figure")


def _golden_path(exp_id: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{exp_id}.json"


def _sanitize(value):
    """Make generator output JSON-serialisable (numpy scalars -> Python)."""
    if isinstance(value, dict):
        return {str(key): _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _assert_matches(actual, golden, path=""):
    """Recursive comparison with per-metric relative tolerances."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert set(actual) == set(golden), \
            f"{path}: key mismatch {sorted(set(actual) ^ set(golden))}"
        for key in golden:
            _assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list), f"{path}: expected list"
        assert len(actual) == len(golden), \
            f"{path}: {len(actual)} rows vs golden {len(golden)}"
        for index, (a, g) in enumerate(zip(actual, golden)):
            _assert_matches(a, g, f"{path}[{index}]")
    elif isinstance(golden, bool) or golden is None or isinstance(golden, str):
        assert actual == golden, f"{path}: {actual!r} != golden {golden!r}"
    elif isinstance(golden, (int, float)):
        metric = path.rsplit(".", 1)[-1].split("[", 1)[0]
        rtol = METRIC_RTOL.get(metric, DEFAULT_RTOL)
        assert isinstance(actual, (int, float)) and not isinstance(actual, bool), \
            f"{path}: {actual!r} is not numeric"
        if math.isnan(float(golden)):
            assert math.isnan(float(actual)), f"{path}: expected NaN"
        else:
            assert actual == pytest.approx(golden, rel=rtol, abs=1e-12), \
                f"{path}: {actual!r} != golden {golden!r} (rtol={rtol})"
    else:  # pragma: no cover - goldens only hold JSON types
        raise TypeError(f"{path}: unsupported golden type {type(golden).__name__}")


def test_every_figure_has_a_golden():
    """Adding a figure generator requires snapshotting it as well."""
    if os.environ.get(UPDATE_ENV):
        pytest.skip("goldens are being regenerated")
    missing = [exp_id for exp_id in FIGURE_IDS
               if not _golden_path(exp_id).is_file()]
    assert not missing, (f"figures without goldens: {missing}; run "
                         f"{UPDATE_ENV}=1 pytest tests/test_figures_golden.py")


def test_no_stale_goldens():
    """A golden whose figure was removed/renamed must be deleted with it."""
    known = {f"{exp_id}.json" for exp_id in FIGURE_IDS}
    stale = [p.name for p in GOLDEN_DIR.glob("*.json") if p.name not in known]
    assert not stale, f"goldens without figure experiments: {stale}"


@pytest.mark.parametrize("exp_id", FIGURE_IDS)
def test_figure_matches_golden(exp_id):
    data = _sanitize(run_experiment(exp_id))
    path = _golden_path(exp_id)
    if os.environ.get(UPDATE_ENV):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            json.dump(data, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return
    if not path.is_file():
        pytest.fail(f"missing golden {path.name}; run {UPDATE_ENV}=1 "
                    f"pytest tests/test_figures_golden.py to create it")
    with path.open() as handle:
        golden = json.load(handle)
    _assert_matches(data, golden, exp_id)
