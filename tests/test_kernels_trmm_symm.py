"""Functional tests for TRMM and SYMM on the LAC simulator."""

import numpy as np
import pytest

from repro.kernels.symm import lac_symm
from repro.kernels.trmm import lac_trmm
from repro.lac.core import LinearAlgebraCore
from repro.reference import ref_symm, ref_trmm


@pytest.fixture
def core():
    return LinearAlgebraCore()


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.mark.parametrize("k,m", [(4, 4), (8, 8), (8, 12), (12, 8)])
def test_trmm_matches_reference(core, rng, k, m):
    l = np.tril(rng.random((k, k)))
    b = rng.random((k, m))
    result = lac_trmm(core, l, b)
    np.testing.assert_allclose(result.output, ref_trmm(l, b), rtol=1e-12)


def test_trmm_identity_is_identity(core, rng):
    b = rng.random((8, 8))
    result = lac_trmm(core, np.eye(8), b)
    np.testing.assert_allclose(result.output, b, rtol=1e-12)


def test_trmm_ignores_strictly_upper_entries_of_l(core, rng):
    l_full = rng.random((8, 8))
    b = rng.random((8, 8))
    r1 = lac_trmm(LinearAlgebraCore(), l_full, b)
    r2 = lac_trmm(LinearAlgebraCore(), np.tril(l_full), b)
    np.testing.assert_allclose(r1.output, r2.output, rtol=1e-12)


def test_trmm_shape_validation(core, rng):
    with pytest.raises(ValueError):
        lac_trmm(core, rng.random((8, 4)), rng.random((8, 8)))
    with pytest.raises(ValueError):
        lac_trmm(core, np.tril(rng.random((8, 8))), rng.random((4, 8)))


@pytest.mark.parametrize("m,n", [(4, 4), (8, 8), (8, 12)])
def test_symm_matches_reference(core, rng, m, n):
    c = rng.random((m, n))
    a_lower = np.tril(rng.random((m, m)))
    b = rng.random((m, n))
    result = lac_symm(core, c, a_lower, b)
    np.testing.assert_allclose(result.output, ref_symm(c, a_lower, b), rtol=1e-12)


def test_symm_only_reads_lower_triangle(core, rng):
    """Garbage in the strict upper triangle of A must not change the result."""
    c = rng.random((8, 8))
    b = rng.random((8, 8))
    a_lower = np.tril(rng.random((8, 8)))
    a_garbage = a_lower + np.triu(1e6 * rng.random((8, 8)), k=1)
    r_clean = lac_symm(LinearAlgebraCore(), c, a_lower, b)
    r_garbage = lac_symm(LinearAlgebraCore(), c, a_garbage, b)
    np.testing.assert_allclose(r_clean.output, r_garbage.output, rtol=1e-12)


def test_symm_shape_validation(core, rng):
    with pytest.raises(ValueError):
        lac_symm(core, rng.random((8, 8)), rng.random((8, 4)), rng.random((8, 8)))
    with pytest.raises(ValueError):
        lac_symm(core, rng.random((4, 8)), rng.random((8, 8)), rng.random((8, 8)))


def test_symm_equals_gemm_with_symmetrised_operand(core, rng):
    """SYMM must agree with an explicit GEMM on the symmetrised matrix."""
    c = rng.random((8, 8))
    a_lower = np.tril(rng.random((8, 8)))
    a_sym = a_lower + np.tril(a_lower, -1).T
    b = rng.random((8, 8))
    result = lac_symm(core, c, a_lower, b)
    np.testing.assert_allclose(result.output, c + a_sym @ b, rtol=1e-12)
