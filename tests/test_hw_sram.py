"""Tests for the CACTI-like SRAM model."""

import pytest

from repro.hw.sram import SRAMConfig, SRAMModel, pe_store_a, pe_store_b


def test_calibration_point_16kb_dual_ported():
    """The 16 KB dual-ported PE store should land near the quoted CACTI point."""
    model = SRAMModel(SRAMConfig(capacity_bytes=16 * 1024, ports=2, word_bytes=8))
    assert 0.10 <= model.area_mm2 <= 0.16
    # ~13.5 mW per port at 2.5 GHz => ~5.4 pJ per access.
    assert 4.0e-12 <= model.energy_per_access_j <= 7.0e-12
    power = model.dynamic_power_w(2.5, accesses_per_cycle=1.0)
    assert 0.010 <= power <= 0.017


def test_area_grows_with_capacity():
    small = SRAMModel(SRAMConfig(4 * 1024, ports=1))
    big = SRAMModel(SRAMConfig(32 * 1024, ports=1))
    assert big.area_mm2 > small.area_mm2
    # Sub-linear to linear growth: 8x capacity should cost less than 10x area.
    assert big.area_mm2 < 10 * small.area_mm2


def test_ports_increase_area_and_not_access_energy():
    single = SRAMModel(SRAMConfig(16 * 1024, ports=1))
    dual = SRAMModel(SRAMConfig(16 * 1024, ports=2))
    assert dual.area_mm2 > single.area_mm2
    assert dual.energy_per_access_j == pytest.approx(single.energy_per_access_j)


def test_banking_reduces_access_energy_and_adds_bandwidth():
    mono = SRAMModel(SRAMConfig(16 * 1024, ports=1, banks=1))
    banked = SRAMModel(SRAMConfig(16 * 1024, ports=1, banks=4))
    assert banked.energy_per_access_j < mono.energy_per_access_j
    assert banked.peak_bandwidth_bytes_per_cycle() == 4 * mono.peak_bandwidth_bytes_per_cycle()


def test_high_performance_corner_is_leakier():
    lp = SRAMModel(SRAMConfig(64 * 1024, ports=1))
    hp = SRAMModel(SRAMConfig(64 * 1024, ports=1, high_performance=True))
    assert hp.leakage_power_w > lp.leakage_power_w
    assert hp.max_frequency_ghz() > lp.max_frequency_ghz()


def test_low_power_leakage_is_negligible_relative_to_dynamic():
    model = SRAMModel(SRAMConfig(16 * 1024, ports=2))
    dynamic = model.dynamic_power_w(1.0, 1.0)
    assert model.leakage_power_w < 0.1 * dynamic


def test_access_rate_validation():
    model = SRAMModel(SRAMConfig(16 * 1024, ports=1))
    with pytest.raises(ValueError):
        model.dynamic_power_w(1.0, accesses_per_cycle=2.0)
    with pytest.raises(ValueError):
        model.dynamic_power_w(-1.0, accesses_per_cycle=0.5)


def test_config_validation():
    with pytest.raises(ValueError):
        SRAMConfig(capacity_bytes=0)
    with pytest.raises(ValueError):
        SRAMConfig(capacity_bytes=1024, ports=7)
    with pytest.raises(ValueError):
        SRAMConfig(capacity_bytes=1024, banks=0)
    with pytest.raises(ValueError):
        SRAMConfig(capacity_bytes=1024, word_bytes=0)


def test_pe_store_helpers_have_expected_port_counts():
    a = pe_store_a(16 * 1024)
    b = pe_store_b(2 * 1024)
    assert a.config.ports == 1
    assert b.config.ports == 2
    assert a.config.word_bytes == 8


def test_small_arrays_reach_high_frequency():
    small = SRAMModel(SRAMConfig(8 * 1024, ports=1))
    assert small.max_frequency_ghz() >= 2.5


def test_describe_contains_capacity():
    text = SRAMModel(SRAMConfig(16 * 1024, ports=2)).describe()
    assert "16.0 KB" in text
