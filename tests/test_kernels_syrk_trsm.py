"""Functional tests for SYRK, SYR2K and TRSM on the LAC simulator."""

import numpy as np
import pytest

from repro.kernels.syrk import lac_syr2k, lac_syrk
from repro.kernels.trsm import lac_trsm, lac_trsm_unblocked, trsm_unblocked_cycle_estimate
from repro.lac.core import LACConfig, LinearAlgebraCore
from repro.reference import ref_syr2k, ref_syrk, ref_trsm


@pytest.fixture
def core():
    return LinearAlgebraCore()


@pytest.fixture
def rng():
    return np.random.default_rng(7)


# ----------------------------------------------------------------- SYRK
@pytest.mark.parametrize("mc,kc", [(4, 4), (8, 8), (8, 16), (12, 8)])
def test_syrk_matches_reference(core, rng, mc, kc):
    c = rng.random((mc, mc))
    a = rng.random((mc, kc))
    result = lac_syrk(core, c, a)
    np.testing.assert_allclose(result.output, ref_syrk(c, a), rtol=1e-12)


def test_syrk_leaves_strict_upper_triangle_untouched(core, rng):
    c = rng.random((8, 8))
    a = rng.random((8, 8))
    result = lac_syrk(core, c, a)
    upper = np.triu_indices(8, k=1)
    np.testing.assert_array_equal(result.output[upper], c[upper])


def test_syrk_uses_diagonal_transpose_broadcasts(core, rng):
    result = lac_syrk(core, rng.random((4, 4)), rng.random((4, 8)))
    # The transposing kernel drives both bus sets every iteration.
    assert result.counters.row_broadcasts > 0
    assert result.counters.column_broadcasts > 0


def test_syrk_shape_validation(core, rng):
    with pytest.raises(ValueError):
        lac_syrk(core, rng.random((8, 4)), rng.random((8, 8)))


# ---------------------------------------------------------------- SYR2K
@pytest.mark.parametrize("mc,kc", [(4, 4), (8, 8)])
def test_syr2k_matches_reference(core, rng, mc, kc):
    c = rng.random((mc, mc))
    a = rng.random((mc, kc))
    b = rng.random((mc, kc))
    result = lac_syr2k(core, c, a, b)
    np.testing.assert_allclose(result.output, ref_syr2k(c, a, b), rtol=1e-12)


def test_syr2k_requires_matching_operand_shapes(core, rng):
    with pytest.raises(ValueError):
        lac_syr2k(core, rng.random((8, 8)), rng.random((8, 8)), rng.random((8, 4)))


def test_syr2k_does_roughly_twice_the_macs_of_syrk(rng):
    c = rng.random((8, 8))
    a = rng.random((8, 8))
    b = rng.random((8, 8))
    core1, core2 = LinearAlgebraCore(), LinearAlgebraCore()
    syrk = lac_syrk(core1, c, a)
    syr2k = lac_syr2k(core2, c, a, b)
    assert syr2k.counters.mac_ops > 1.8 * syrk.counters.mac_ops


# ----------------------------------------------------------------- TRSM
def _well_conditioned_lower(rng, n):
    return np.tril(rng.random((n, n))) + n * np.eye(n)


@pytest.mark.parametrize("variant", ["basic", "stacked", "software_pipelined"])
def test_trsm_unblocked_matches_reference(core, rng, variant):
    l = _well_conditioned_lower(rng, 4)
    b = rng.random((4, 12))
    out = lac_trsm_unblocked(core, l, b, variant=variant)
    np.testing.assert_allclose(out, np.linalg.solve(np.tril(l), b), rtol=1e-12)


def test_trsm_unblocked_variant_validation(core, rng):
    with pytest.raises(ValueError):
        lac_trsm_unblocked(core, _well_conditioned_lower(rng, 4), rng.random((4, 4)),
                           variant="bogus")


@pytest.mark.parametrize("k,m", [(4, 4), (8, 8), (8, 16), (16, 8)])
def test_trsm_blocked_matches_reference(core, rng, k, m):
    l = _well_conditioned_lower(rng, k)
    b = rng.random((k, m))
    result = lac_trsm(core, l, b)
    np.testing.assert_allclose(result.output, ref_trsm(l, b), rtol=1e-10)


def test_trsm_detects_singular_triangle(core, rng):
    l = _well_conditioned_lower(rng, 8)
    l[3, 3] = 0.0
    with pytest.raises(ValueError):
        lac_trsm(core, l, rng.random((8, 8)))


def test_trsm_solution_verifies_forward_substitution(core, rng):
    l = _well_conditioned_lower(rng, 8)
    b = rng.random((8, 8))
    x = lac_trsm(core, l, b).output
    np.testing.assert_allclose(np.tril(l) @ x, b, rtol=1e-10)


def test_trsm_uses_sfu_for_reciprocals(core, rng):
    l = _well_conditioned_lower(rng, 8)
    result = lac_trsm(core, l, rng.random((8, 8)))
    assert result.counters.sfu_ops == 8  # one reciprocal per diagonal element


def test_stacking_and_pipelining_reduce_cycle_estimates():
    """Paper: stacked fills the FPU pipeline, software pipelining nearly doubles speed."""
    nr, p = 4, 8
    basic_per_block = trsm_unblocked_cycle_estimate(nr, p, "basic")
    stacked_total = trsm_unblocked_cycle_estimate(nr, p, "stacked", stacked_blocks=p)
    stacked_per_block = stacked_total / p
    assert stacked_per_block < basic_per_block / 4
    g = 4
    sw_total = trsm_unblocked_cycle_estimate(nr, p, "software_pipelined", groups=g)
    sw_per_block = sw_total / (g * p)
    assert sw_per_block < stacked_per_block


def test_cycle_estimate_validation():
    with pytest.raises(ValueError):
        trsm_unblocked_cycle_estimate(4, 8, "unknown")
    with pytest.raises(ValueError):
        trsm_unblocked_cycle_estimate(4, 8, "stacked", stacked_blocks=0)
    with pytest.raises(ValueError):
        trsm_unblocked_cycle_estimate(4, 8, "software_pipelined", groups=0)


def test_trsm_on_8x8_core(rng):
    core8 = LinearAlgebraCore(LACConfig(nr=8))
    l = _well_conditioned_lower(rng, 8)
    b = rng.random((8, 8))
    result = lac_trsm(core8, l, b)
    np.testing.assert_allclose(result.output, ref_trsm(l, b), rtol=1e-10)
