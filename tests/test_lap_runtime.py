"""Tests for the host-side programming model (algorithms-by-blocks runtime)."""

import numpy as np
import pytest

from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.runtime import AlgorithmsByBlocks, LAPRuntime, TaskDescriptor, TaskKind


@pytest.fixture
def rng():
    return np.random.default_rng(41)


@pytest.fixture
def lap():
    return LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4, onchip_memory_mbytes=1.0))


# ----------------------------------------------------------- task graphs
def test_gemm_task_graph_shape():
    lib = AlgorithmsByBlocks(tile=8)
    tasks = lib.gemm_tasks(m=16, n=16, k=24)
    assert len(tasks) == 2 * 2 * 3
    # Accumulation chains: tasks writing the same C tile depend on each other.
    by_tile = {}
    for t in tasks:
        by_tile.setdefault(t.output, []).append(t)
    for tile_tasks in by_tile.values():
        assert len(tile_tasks) == 3
        assert tile_tasks[0].depends_on == []
        assert tile_tasks[1].depends_on == [tile_tasks[0].task_id]
        assert tile_tasks[2].depends_on == [tile_tasks[1].task_id]


def test_cholesky_task_graph_kinds_and_dependencies():
    lib = AlgorithmsByBlocks(tile=4)
    tasks = lib.cholesky_tasks(n=12)  # 3x3 tiles
    kinds = [t.kind for t in tasks]
    assert kinds.count(TaskKind.CHOLESKY) == 3
    assert kinds.count(TaskKind.TRSM_RIGHT_T) == 3   # (1,0), (2,0), (2,1)
    assert kinds.count(TaskKind.SYRK) == 3           # diagonal updates
    assert kinds.count(TaskKind.GEMM) == 1           # (2,1) off-diagonal update
    # Every dependency refers to an earlier task id (topological order).
    ids = {t.task_id for t in tasks}
    for t in tasks:
        assert all(d in ids and d < t.task_id for d in t.depends_on)


def test_task_graph_validation():
    lib = AlgorithmsByBlocks(tile=8)
    with pytest.raises(ValueError):
        lib.gemm_tasks(m=12, n=16, k=16)
    with pytest.raises(ValueError):
        lib.cholesky_tasks(n=12)
    with pytest.raises(ValueError):
        AlgorithmsByBlocks(tile=2)
    with pytest.raises(ValueError):
        TaskDescriptor(task_id=-1, kind=TaskKind.GEMM, output=(0, 0))


# ------------------------------------------------------------- execution
def test_runtime_executes_blocked_gemm_correctly(lap, rng):
    tile = 8
    m = n = k = 16
    a, b = rng.random((m, k)), rng.random((k, n))
    c = rng.random((m, n))
    runtime = LAPRuntime(lap, tile)
    tiles = {
        "A": LAPRuntime.tile_matrix(a, tile),
        "B": LAPRuntime.tile_matrix(b, tile),
        "C": LAPRuntime.tile_matrix(c, tile),
    }
    tasks = runtime.library.gemm_tasks(m, n, k)
    stats = runtime.execute(tasks, tiles)
    result = LAPRuntime.untile_matrix(tiles["C"], tile)
    np.testing.assert_allclose(result, c + a @ b, rtol=1e-10)
    assert stats["tasks_executed"] == len(tasks)
    assert stats["makespan_cycles"] > 0
    assert 0.0 < stats["parallel_efficiency"] <= 1.0


def test_runtime_executes_blocked_cholesky_correctly(lap, rng):
    tile = 4
    n = 12
    g = rng.random((n, n))
    a = g @ g.T + n * np.eye(n)
    runtime = LAPRuntime(lap, tile)
    # All operand names alias the same tile dictionary: the factorization
    # updates A in place (CHOL/TRSM produce L tiles, the alpha = -1 updates
    # subtract the outer products of the panel).
    a_tiles = LAPRuntime.tile_matrix(a, tile)
    tiles = {"A": a_tiles, "B": a_tiles, "C": a_tiles, "L": a_tiles}
    tasks = runtime.library.cholesky_tasks(n)
    stats = runtime.execute(tasks, tiles)
    assert stats["tasks_executed"] == len(tasks)
    assert stats["makespan_cycles"] >= max(stats["per_core_busy_cycles"])
    result = np.tril(LAPRuntime.untile_matrix(a_tiles, tile))
    np.testing.assert_allclose(result, np.linalg.cholesky(a), rtol=1e-8, atol=1e-9)


def test_runtime_uses_multiple_cores(lap, rng):
    tile = 8
    runtime = LAPRuntime(lap, tile)
    a, b, c = rng.random((32, 16)), rng.random((16, 32)), np.zeros((32, 32))
    tiles = {"A": LAPRuntime.tile_matrix(a, tile), "B": LAPRuntime.tile_matrix(b, tile),
             "C": LAPRuntime.tile_matrix(c, tile)}
    tasks = runtime.library.gemm_tasks(32, 32, 16)
    stats = runtime.execute(tasks, tiles)
    busy = stats["per_core_busy_cycles"]
    assert len(busy) == 2
    assert all(cycles > 0 for cycles in busy)
    # Independent C tiles should spread across the two cores reasonably evenly.
    assert min(busy) > 0.3 * max(busy)


def test_runtime_detects_circular_dependencies(lap):
    runtime = LAPRuntime(lap, 8)
    t0 = TaskDescriptor(0, TaskKind.GEMM, output=(0, 0), inputs=[(0, 0), (0, 0)],
                        depends_on=[1])
    t1 = TaskDescriptor(1, TaskKind.GEMM, output=(0, 0), inputs=[(0, 0), (0, 0)],
                        depends_on=[0])
    with pytest.raises(RuntimeError, match="deadlock"):
        runtime.execute([t0, t1], {"A": {}, "B": {}, "C": {}})


def test_runtime_detects_unsatisfiable_dependency(lap):
    """A dependency on a task id that is not in the graph can never clear."""
    runtime = LAPRuntime(lap, 8)
    orphan = TaskDescriptor(0, TaskKind.GEMM, output=(0, 0),
                            inputs=[(0, 0), (0, 0)], depends_on=[99])
    with pytest.raises(RuntimeError, match="deadlock"):
        runtime.execute([orphan], {"A": {}, "B": {}, "C": {}})


def test_trsm_task_kind_solves_lower_triangular_tile(lap, rng):
    """The plain TRSM kind (B := L^{-1} B) executes and verifies."""
    tile = 8
    runtime = LAPRuntime(lap, tile)
    l = np.tril(rng.random((tile, tile))) + tile * np.eye(tile)
    b = rng.random((tile, tile))
    tiles = {"L": {(0, 0): l}, "B": {(0, 0): b.copy()}}
    task = TaskDescriptor(0, TaskKind.TRSM, output=(0, 0), inputs=[(0, 0)])
    stats = runtime.execute([task], tiles)
    assert stats["tasks_executed"] == 1
    assert stats["makespan_cycles"] > 0
    np.testing.assert_allclose(tiles["B"][(0, 0)], np.linalg.solve(l, b),
                               rtol=1e-10, atol=1e-12)


def test_empty_graph_has_zero_makespan_and_efficiency(lap):
    """An empty / zero-makespan graph reports 0 efficiency, not a crash."""
    runtime = LAPRuntime(lap, 8)
    stats = runtime.execute([], {"A": {}, "B": {}, "C": {}})
    assert stats["makespan_cycles"] == 0
    assert stats["parallel_efficiency"] == 0.0
    assert stats["tasks_executed"] == 0
    assert stats["per_core_busy_cycles"] == [0, 0]
    assert runtime.executions == []


def test_tile_and_untile_round_trip(rng):
    m = rng.random((16, 24))
    tiles = LAPRuntime.tile_matrix(m, 8)
    assert len(tiles) == 2 * 3
    back = LAPRuntime.untile_matrix(tiles, 8)
    np.testing.assert_array_equal(back, m)
    with pytest.raises(ValueError):
        LAPRuntime.tile_matrix(rng.random((10, 8)), 8)
    with pytest.raises(ValueError):
        LAPRuntime.untile_matrix({}, 8)
