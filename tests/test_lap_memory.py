"""Tests for the unified memory-hierarchy layer of the LAP runtime.

Covers the tile-residency LRU, the bandwidth-stall and energy models, the
task footprints in the IR, the memory_aware policy, the off-chip shim
equivalence, and the tolerance-compared golden of the traffic / stall /
energy columns the ``lap_runtime`` runner now reports.

Refreshing the runner golden after an intentional model change::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_lap_memory.py
"""

import importlib
import json
import os
import pathlib

import numpy as np
import pytest

from repro.engine.runners import get_runner
from repro.hw.memory import OffChipInterface
from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.memory import (BandwidthModel, MemoryHierarchy, TaskEnergyModel,
                              TileResidency, gemm_stream_traffic)
from repro.lap.offchip import OffChipTrafficModel, TrafficSummary
from repro.lap.runtime import LAPRuntime
from repro.lap.taskgraph import (AlgorithmsByBlocks, TaskDescriptor, TaskKind,
                                 task_flops)
from repro.lap.timing import compose_task_cycles

GOLDEN = (pathlib.Path(__file__).resolve().parent
          / "goldens" / "runtime" / "lap_runtime_memory.json")


def make_runtime(num_cores=2, tile=8, nr=4, onchip_mbytes=1.0, **kwargs):
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=num_cores, nr=nr,
                                           onchip_memory_mbytes=onchip_mbytes))
    return LAPRuntime(lap, tile, **kwargs)


# --------------------------------------------------------- task footprints
class TestTaskFootprints:
    def test_gemm_graph_footprints_are_explicit(self):
        graph = AlgorithmsByBlocks(tile=8).gemm_tasks(16, 16, 16)
        task = graph[0]
        assert task.reads == [("A", (0, 0)), ("B", (0, 0)), ("C", (0, 0))]
        assert task.writes == [("C", (0, 0))]

    def test_factorization_footprints_resolve_aliasing(self):
        """Cholesky / LU / QR footprints all live in the single operand A."""
        lib = AlgorithmsByBlocks(tile=8)
        for graph in (lib.cholesky_tasks(24), lib.lu_tasks(24), lib.qr_tasks(24)):
            for task in graph:
                operands = {op for op, _ in task.read_tiles() + task.write_tiles()}
                assert operands == {"A"}

    def test_derived_footprint_for_hand_built_tasks(self):
        task = TaskDescriptor(0, TaskKind.GEMM, output=(0, 1),
                              inputs=[(0, 2), (2, 1)])
        assert task.read_tiles() == [("A", (0, 2)), ("B", (2, 1)), ("C", (0, 1))]
        assert task.write_tiles() == [("C", (0, 1))]
        trsm = TaskDescriptor(1, TaskKind.TRSM, output=(1, 0), inputs=[(0, 0)])
        assert trsm.read_tiles() == [("L", (0, 0)), ("B", (1, 0))]
        assert trsm.write_tiles() == [("B", (1, 0))]

    def test_touched_tiles_deduplicates(self):
        task = TaskDescriptor(0, TaskKind.SYRK, output=(1, 1),
                              inputs=[(1, 0)],
                              reads=[("A", (1, 0)), ("A", (1, 0)), ("A", (1, 1))],
                              writes=[("A", (1, 1))])
        assert task.touched_tiles() == [("A", (1, 0)), ("A", (1, 1))]

    def test_task_flops_and_working_set(self):
        graph = AlgorithmsByBlocks(tile=8).cholesky_tasks(24)
        assert task_flops(graph[0], 8) == pytest.approx(8 ** 3 / 3.0)
        with pytest.raises(ValueError):
            task_flops(graph[0], 0)
        # 3x3 blocking -> 6 lower-triangle tiles of 8x8 doubles.
        assert len(graph.working_set_tiles()) == 6
        assert graph.working_set_bytes(8) == 6 * 8 * 8 * 8
        assert graph.total_flops(8) > 0


# ------------------------------------------------------------ TileResidency
class TestTileResidency:
    def test_validation(self):
        with pytest.raises(ValueError):
            TileResidency(0, 512)
        with pytest.raises(ValueError):
            TileResidency(1024, 0)

    def test_cold_misses_are_compulsory_once(self):
        res = TileResidency(capacity_bytes=4096, tile_bytes=512)
        refill, compulsory, spill, wb = res.touch([("A", (0, 0)), ("A", (0, 1))], [])
        assert (refill, compulsory, spill, wb) == (1024, 1024, 0, 0)
        # Re-touching resident tiles moves no bytes.
        refill, compulsory, spill, wb = res.touch([("A", (0, 0))], [])
        assert (refill, compulsory, spill, wb) == (0, 0, 0, 0)

    def test_capacity_eviction_and_spill_refill(self):
        res = TileResidency(capacity_bytes=1024, tile_bytes=512)  # 2 tiles
        res.touch([("A", (0, 0)), ("A", (0, 1))], [])
        res.touch([("A", (0, 2))], [])          # evicts LRU (0, 0), clean
        assert not res.is_resident(("A", (0, 0)))
        refill, compulsory, spill, wb = res.touch([("A", (0, 0))], [])
        assert spill == 512 and compulsory == 0  # re-fetch after eviction
        assert res.resident_bytes <= 1024

    def test_dirty_eviction_writes_back(self):
        res = TileResidency(capacity_bytes=1024, tile_bytes=512)
        res.touch([], [("A", (0, 0))])           # dirty
        res.touch([("A", (0, 1))], [])
        _, _, _, wb = res.touch([("A", (0, 2))], [])  # evicts dirty (0, 0)
        assert wb == 512

    def test_footprint_is_pinned_against_itself(self):
        """One task's tiles never evict each other, even above capacity."""
        res = TileResidency(capacity_bytes=1024, tile_bytes=512)
        refill, compulsory, spill, wb = res.touch(
            [("A", (0, 0)), ("A", (0, 1)), ("A", (0, 2))], [])
        assert compulsory == 3 * 512 and spill == 0
        # All three stayed resident through the touch (transient overflow).
        assert res.peak_resident_bytes == 3 * 512

    def test_missing_bytes_and_flush(self):
        res = TileResidency(capacity_bytes=4096, tile_bytes=512)
        res.touch([("A", (0, 0))], [("A", (0, 1))])
        assert res.missing_bytes([("A", (0, 0)), ("A", (9, 9))]) == 512
        assert res.flush() == 512                # one dirty tile
        assert res.resident_bytes == 0
        assert res.flush() == 0


# ------------------------------------------- bandwidth and energy models
class TestBandwidthAndEnergy:
    def test_stall_cycles_follow_interface_bandwidth(self):
        interface = OffChipInterface(bandwidth_gbytes_per_sec=32.0)
        model = BandwidthModel(interface, frequency_ghz=1.0)
        # 32 GB/s at 1 GHz = 32 bytes/cycle.
        assert model.stall_cycles(3200) == pytest.approx(100.0)
        assert model.stall_cycles(0) == 0.0
        with pytest.raises(ValueError):
            BandwidthModel(interface, frequency_ghz=0.0)

    def test_energy_model_terms(self):
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4))
        hierarchy = MemoryHierarchy.for_chip(lap, tile=8)
        energy = hierarchy.energy
        assert energy.energy_per_flop_j > 0
        assert energy.onchip_energy_per_byte_j > 0
        assert energy.offchip_energy_per_byte_j == pytest.approx(60e-12)
        # Off-chip bytes dominate on-chip bytes at equal counts.
        assert (energy.task_energy_j(0, 0, 1024)
                > energy.task_energy_j(0, 1024, 0))
        with pytest.raises(ValueError):
            energy.task_energy_j(-1, 0, 0)

    def test_compose_task_cycles(self):
        assert compose_task_cycles(100, 20) == 120
        assert compose_task_cycles(100, 20, overlap_fraction=1.0) == 100
        with pytest.raises(ValueError):
            compose_task_cycles(-1, 0)
        with pytest.raises(ValueError):
            compose_task_cycles(1, 1, overlap_fraction=2.0)


# ----------------------------------------------------- off-chip shim parity
class TestOffChipShim:
    def test_traffic_summary_matches_stream_formula(self):
        model = OffChipTrafficModel(num_cores=8, element_bytes=8)
        for fraction in (1.0, 0.5, 0.25):
            summary = model.traffic(1024, fraction)
            parts = gemm_stream_traffic(1024, 8, fraction)
            assert summary.a_bytes == parts["a_bytes"]
            assert summary.b_bytes == parts["b_bytes"]
            assert summary.c_read_bytes == parts["c_read_bytes"]
            assert summary.c_write_bytes == parts["c_write_bytes"]

    def test_residency_limit_equals_closed_form(self):
        """Unconstrained residency over a GEMM graph reproduces the analytic
        streamed traffic exactly (every operand crosses the boundary once)."""
        n, tile, eb = 32, 8, 8
        graph = AlgorithmsByBlocks(tile=tile).gemm_tasks(n, n, n)
        res = TileResidency(capacity_bytes=float("1e9"), tile_bytes=tile * tile * eb)
        refill = writeback = 0.0
        for task in graph:
            r, _, _, wb = res.touch(task.read_tiles(), task.write_tiles())
            refill += r
            writeback += wb
        writeback += res.flush()
        parts = gemm_stream_traffic(n, eb, 1.0)
        assert refill == parts["a_bytes"] + parts["b_bytes"] + parts["c_read_bytes"]
        assert writeback == parts["c_write_bytes"]

    def test_degenerate_arithmetic_intensity_is_zero(self):
        summary = TrafficSummary(n=0, element_bytes=8, a_bytes=0.0, b_bytes=0.0,
                                 c_read_bytes=0.0, c_write_bytes=0.0)
        assert summary.arithmetic_intensity == 0.0
        nonzero = TrafficSummary(n=0, element_bytes=8, a_bytes=8.0, b_bytes=0.0,
                                 c_read_bytes=0.0, c_write_bytes=0.0)
        assert nonzero.arithmetic_intensity == 0.0

    def test_traffic_summary_validation(self):
        with pytest.raises(ValueError, match="element bytes"):
            TrafficSummary(n=4, element_bytes=0, a_bytes=1.0, b_bytes=1.0,
                           c_read_bytes=1.0, c_write_bytes=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            TrafficSummary(n=4, element_bytes=8, a_bytes=-1.0, b_bytes=1.0,
                           c_read_bytes=1.0, c_write_bytes=1.0)
        with pytest.raises(ValueError, match="element bytes"):
            OffChipTrafficModel(num_cores=1, element_bytes=0)


# -------------------------------------------------- runtime integration
class TestRuntimeDataMovement:
    def test_unconstrained_capacity_has_no_spills_or_stalls(self):
        runtime = make_runtime()
        stats = runtime.run_blocked_cholesky(32, np.random.default_rng(0))
        assert stats["spill_bytes"] == 0
        assert stats["stall_cycles"] == 0
        assert stats["offchip_traffic_bytes"] == (stats["compulsory_bytes"]
                                                  + stats["writeback_bytes"])
        assert stats["energy_j"] > 0
        assert stats["gflops_per_w"] > 0
        assert stats["arithmetic_intensity"] > 0

    def test_constrained_capacity_spills_and_stalls(self):
        free = make_runtime(timing="memoized")
        tight = make_runtime(timing="memoized", on_chip_kb=4.0)
        f = free.run_blocked_cholesky(48, np.random.default_rng(0), verify=False)
        t = tight.run_blocked_cholesky(48, np.random.default_rng(0), verify=False)
        assert t["spill_bytes"] > 0
        assert t["stall_cycles"] > 0
        assert t["offchip_traffic_bytes"] > f["offchip_traffic_bytes"]
        # Stalls lengthen the schedule and burn energy; a stalled core is
        # occupied but not computing, so efficiency must drop, not pad.
        assert t["makespan_cycles"] > f["makespan_cycles"]
        assert t["energy_j"] > f["energy_j"]
        assert t["gflops_per_w"] < f["gflops_per_w"]
        assert t["parallel_efficiency"] < f["parallel_efficiency"]
        # Compute work is identical; only data movement differs.
        assert t["per_core_busy_cycles"] != []
        assert f["compulsory_bytes"] == t["compulsory_bytes"]

    def test_memory_disabled_restores_compute_only_stats(self):
        runtime = make_runtime(memory=False)
        stats = runtime.run_blocked_gemm(16, np.random.default_rng(0))
        assert "offchip_traffic_bytes" not in stats
        assert runtime.last_memory is None

    def test_disabled_memory_matches_enabled_makespan_when_unconstrained(self):
        on = make_runtime()
        off = make_runtime(memory=False)
        a = on.run_blocked_cholesky(32, np.random.default_rng(1))
        b = off.run_blocked_cholesky(32, np.random.default_rng(1))
        assert a["makespan_cycles"] == b["makespan_cycles"]
        assert a["per_core_busy_cycles"] == b["per_core_busy_cycles"]

    def test_bandwidth_override_scales_stalls(self):
        slow = make_runtime(timing="memoized", on_chip_kb=4.0, bandwidth_gbs=8.0)
        fast = make_runtime(timing="memoized", on_chip_kb=4.0, bandwidth_gbs=64.0)
        s = slow.run_blocked_cholesky(48, np.random.default_rng(0), verify=False)
        f = fast.run_blocked_cholesky(48, np.random.default_rng(0), verify=False)
        assert s["offchip_traffic_bytes"] == f["offchip_traffic_bytes"]
        assert s["stall_cycles"] == pytest.approx(8 * f["stall_cycles"])
        assert s["makespan_cycles"] > f["makespan_cycles"]

    def test_full_stall_overlap_restores_compute_only_makespan(self):
        """stall_overlap=1 hides every spill refill: same traffic, but the
        makespan matches a schedule with no bandwidth stalls at all."""
        serialised = make_runtime(timing="memoized", on_chip_kb=4.0)
        hidden = make_runtime(timing="memoized", on_chip_kb=4.0,
                              stall_overlap=1.0)
        free = make_runtime(timing="memoized")
        s = serialised.run_blocked_cholesky(48, np.random.default_rng(0),
                                            verify=False)
        h = hidden.run_blocked_cholesky(48, np.random.default_rng(0),
                                        verify=False)
        f = free.run_blocked_cholesky(48, np.random.default_rng(0),
                                      verify=False)
        assert h["offchip_traffic_bytes"] == s["offchip_traffic_bytes"]
        assert h["stall_cycles"] == s["stall_cycles"] > 0  # still reported
        assert h["makespan_cycles"] < s["makespan_cycles"]
        assert h["makespan_cycles"] == f["makespan_cycles"]
        with pytest.raises(ValueError, match="stall_overlap"):
            make_runtime(stall_overlap=1.5)

    def test_resident_touches_do_not_bump_residency_version(self):
        res = TileResidency(capacity_bytes=4096, tile_bytes=512)
        res.touch([("A", (0, 0))], [])
        version = res.version
        res.touch([("A", (0, 0))], [])           # fully resident: no-op
        assert res.version == version
        res.touch([("A", (0, 1))], [])           # membership changed
        assert res.version == version + 1

    def test_per_task_accounting_sums_to_totals(self):
        runtime = make_runtime(timing="memoized", on_chip_kb=4.0)
        stats = runtime.run_blocked_cholesky(48, np.random.default_rng(0),
                                             verify=False)
        stalls = sum(e.stall_cycles for e in runtime.executions)
        assert stalls == pytest.approx(stats["stall_cycles"])
        # Final-flush writebacks are accounted at the hierarchy, not a task.
        task_energy = sum(e.energy_j for e in runtime.executions)
        assert task_energy <= stats["energy_j"]
        assert task_energy == pytest.approx(stats["energy_j"], rel=0.2)

    @pytest.mark.parametrize("workload,n", [("cholesky", 48), ("lu", 40),
                                            ("gemm", 32), ("qr", 32)])
    def test_memory_aware_reduces_traffic_under_pressure(self, workload, n):
        results = {}
        for policy in ("greedy", "memory_aware"):
            runtime = make_runtime(timing="memoized", policy=policy,
                                   on_chip_kb=4.0)
            results[policy] = runtime.run_workload(
                workload, n, np.random.default_rng(0), verify=False)
        assert (results["memory_aware"]["offchip_traffic_bytes"]
                < results["greedy"]["offchip_traffic_bytes"])

    def test_memory_aware_degrades_to_greedy_without_memory(self):
        aware = make_runtime(policy="memory_aware", memory=False)
        greedy = make_runtime(policy="greedy", memory=False)
        a = aware.run_blocked_cholesky(32, np.random.default_rng(0))
        g = greedy.run_blocked_cholesky(32, np.random.default_rng(0))
        assert a["makespan_cycles"] == g["makespan_cycles"]

    def test_memory_aware_schedule_stays_valid(self):
        runtime = make_runtime(timing="memoized", policy="memory_aware",
                               on_chip_kb=4.0)
        stats = runtime.run_blocked_cholesky(48, np.random.default_rng(0),
                                             verify=True)
        graph = AlgorithmsByBlocks(8).cholesky_tasks(48)
        assert stats["residual"] < 1e-8
        end_by_id = {e.task_id: e.end_cycle for e in runtime.executions}
        for execution in runtime.executions:
            task = graph.task(execution.task_id)
            ready = max((end_by_id[d] for d in task.depends_on), default=0)
            assert execution.start_cycle >= ready

    def test_hierarchy_rejects_reuse_after_finish(self):
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=1, nr=4))
        hierarchy = MemoryHierarchy.for_chip(lap, tile=8)
        hierarchy.finish()
        task = TaskDescriptor(0, TaskKind.GEMM, output=(0, 0),
                              inputs=[(0, 0), (0, 0)])
        with pytest.raises(RuntimeError, match="flushed"):
            hierarchy.account(task)


# ------------------------------------------------ runtime_memory experiment
def test_runtime_memory_golden_has_spills_and_policy_win():
    """Acceptance: on the committed runtime_memory sweep, capacities below
    the working set spill (> 0 bytes) and memory_aware moves strictly less
    off-chip traffic than greedy at every constrained capacity."""
    golden = json.loads((pathlib.Path(__file__).resolve().parent
                         / "goldens" / "runtime_memory.json").read_text())
    by_policy = {}
    for row in golden:
        by_policy.setdefault(row["policy"], {})[row["on_chip_kb"]] = row
    greedy, aware = by_policy["greedy"], by_policy["memory_aware"]
    capacities = sorted(greedy)
    constrained = [kb for kb in capacities if greedy[kb]["spill_bytes"] > 0]
    unconstrained = [kb for kb in capacities if greedy[kb]["spill_bytes"] == 0]
    assert constrained and unconstrained  # the sweep spans the working set
    for kb in constrained:
        assert greedy[kb]["stall_cycles"] > 0
        assert aware[kb]["traffic_bytes"] < greedy[kb]["traffic_bytes"]
        assert aware[kb]["traffic_vs_greedy"] < 1.0
    for kb in unconstrained:
        assert greedy[kb]["stall_cycles"] == 0
        assert aware[kb]["traffic_bytes"] == greedy[kb]["traffic_bytes"]


# -------------------------------------------------------- deprecation shim
def test_scheduler_module_is_a_deprecation_shim():
    """A fresh import of repro.lap.scheduler warns, and every public name it
    re-exports is the *same object* as in repro.lap.policies -- so the shim
    cannot silently drift from the canonical module."""
    import repro.lap.policies as policies
    import repro.lap.scheduler as shim
    with pytest.warns(DeprecationWarning, match="repro.lap.scheduler"):
        shim = importlib.reload(shim)
    assert shim.__all__, "the shim must re-export a public API"
    for name in shim.__all__:
        assert getattr(shim, name) is getattr(policies, name), \
            f"shim re-export '{name}' drifted from repro.lap.policies"
    # Nothing public beyond __all__ sneaks in (drift in the other direction).
    public = {name for name in vars(shim)
              if not name.startswith("_")
              and name not in ("annotations", "warnings")}
    assert public == set(shim.__all__)


# ------------------------------------------------------------- runner golden
#: Runner configurations pinned by the tolerance-based golden below: every
#: workload, constrained and unconstrained capacity, both traffic policies.
GOLDEN_CASES = [
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False},
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 4.0},
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 4.0,
     "policy": "memory_aware"},
    {"algorithm": "gemm", "n": 32, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 6.0},
    {"algorithm": "lu", "n": 40, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 6.0,
     "policy": "memory_aware"},
    {"algorithm": "qr", "n": 32, "tile": 8, "num_cores": 1, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "bandwidth_gbs": 16.0,
     "on_chip_kb": 4.0},
]


def _golden_rows():
    runner = get_runner("lap_runtime")
    return [runner(dict(case)) for case in GOLDEN_CASES]


def test_lap_runtime_rows_match_memory_golden():
    """Traffic / stall / energy columns of the runner are pinned (rtol)."""
    rows = _golden_rows()
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(rows, indent=1, sort_keys=True) + "\n")
        pytest.skip("golden regenerated")
    golden = json.loads(GOLDEN.read_text())
    assert len(rows) == len(golden)
    for row, expected in zip(rows, golden):
        assert set(row) == set(expected)
        for key, value in expected.items():
            if isinstance(value, float):
                assert row[key] == pytest.approx(value, rel=1e-6, abs=1e-15), key
            else:
                assert row[key] == value, key


# ------------------------------------------------- two-level hierarchy
class TestLocalStore:
    def test_validation(self):
        from repro.lap.memory import LocalStore
        with pytest.raises(ValueError):
            LocalStore(0, 512)
        with pytest.raises(ValueError):
            LocalStore(1024, 0)

    def test_fill_hit_and_invalidate(self):
        from repro.lap.memory import LocalStore
        store = LocalStore(capacity_bytes=2 * 512, tile_bytes=512)
        assert store.touch([("A", (0, 0))]) == 512          # cold fill
        assert store.touch([("A", (0, 0))]) == 0            # hit
        assert store.resident_footprint_bytes([("A", (0, 0))]) == 512
        assert store.missing_bytes([("A", (0, 0)), ("A", (1, 1))]) == 512
        store.invalidate(("A", (0, 0)))
        assert not store.is_resident(("A", (0, 0)))
        assert store.touch([("A", (0, 0))]) == 512          # re-fill

    def test_lru_eviction_and_pinning(self):
        from repro.lap.memory import LocalStore
        store = LocalStore(capacity_bytes=2 * 512, tile_bytes=512)
        store.touch([("A", (0, 0)), ("A", (0, 1))])
        store.touch([("A", (0, 2))])                        # evicts (0, 0)
        assert not store.is_resident(("A", (0, 0)))
        assert store.is_resident(("A", (0, 1)))
        # A footprint larger than the budget pins itself (transient overflow).
        fill = store.touch([("B", (0, 0)), ("B", (0, 1)), ("B", (0, 2))])
        assert fill == 3 * 512
        assert store.peak_resident_bytes == 3 * 512

    def test_hierarchy_classifies_local_shared_and_c2c(self):
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4))
        hierarchy = MemoryHierarchy.for_chip(lap, tile=8, local_store_kb=4.0)
        gemm = TaskDescriptor(0, TaskKind.GEMM, output=(0, 0),
                              inputs=[(0, 1), (1, 0)])
        tile_bytes = hierarchy.residency.tile_bytes
        event = hierarchy.account(gemm, core_index=0)
        # Cold: every tile fills from the shared level.
        assert event.local_hit_bytes == 0
        assert event.shared_to_local_bytes == 3 * tile_bytes
        assert event.c2c_bytes == 0
        assert event.local_transfer_cycles > 0
        # Same core again: all local hits, no transfer time.
        event = hierarchy.account(gemm, core_index=0)
        assert event.local_hit_bytes == 3 * tile_bytes
        assert event.shared_to_local_bytes == 0
        assert event.local_transfer_cycles == 0
        # Other core: the tiles come from core 0's store (core-to-core).
        event = hierarchy.account(gemm, core_index=1)
        assert event.c2c_bytes == 3 * tile_bytes
        assert event.shared_to_local_bytes == 0

    def test_write_invalidates_sibling_copies(self):
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4))
        hierarchy = MemoryHierarchy.for_chip(lap, tile=8, local_store_kb=4.0)
        task = TaskDescriptor(0, TaskKind.CHOLESKY, output=(0, 0))
        hierarchy.account(task, core_index=0)
        hierarchy.account(task, core_index=1)   # copies (0, 0) to core 1...
        # ...and, being a write, revokes core 0's stale copy.
        assert not hierarchy.local_stores[0].is_resident(("A", (0, 0)))
        assert hierarchy.local_stores[1].is_resident(("A", (0, 0)))

    def test_shared_eviction_invalidates_local_copies(self):
        """Inclusion: a tile evicted from the shared level cannot survive in
        any core's local store."""
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=1, nr=4))
        tile_kb = 0.5                            # 8x8 doubles
        hierarchy = MemoryHierarchy.for_chip(lap, tile=8,
                                             on_chip_kb=2 * tile_kb,
                                             local_store_kb=8.0)
        tasks = [TaskDescriptor(i, TaskKind.CHOLESKY, output=(i, i))
                 for i in range(3)]
        for task in tasks:
            hierarchy.account(task, core_index=0)
        # Shared level holds 2 tiles; tile (0, 0) was evicted and must be
        # gone from the (much larger) local store as well.
        assert not hierarchy.residency.is_resident(("A", (0, 0)))
        assert not hierarchy.local_stores[0].is_resident(("A", (0, 0)))

    def test_account_validates_core_index(self):
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4))
        hierarchy = MemoryHierarchy.for_chip(lap, tile=8, local_store_kb=4.0)
        task = TaskDescriptor(0, TaskKind.CHOLESKY, output=(0, 0))
        with pytest.raises(ValueError, match="core index"):
            hierarchy.account(task, core_index=2)
        with pytest.raises(ValueError, match="local-store capacity"):
            MemoryHierarchy.for_chip(lap, tile=8, local_store_kb=0.0)


class TestTwoLevelRuntime:
    def test_local_columns_only_with_local_stores(self):
        single = make_runtime()
        stats = single.run_blocked_cholesky(32, np.random.default_rng(0))
        assert "local_hit_rate" not in stats
        two = make_runtime(local_store_kb=2.0)
        stats = two.run_blocked_cholesky(32, np.random.default_rng(0))
        for key in ("local_store_kb", "local_hit_bytes", "shared_to_local_bytes",
                    "c2c_bytes", "local_hit_rate", "local_transfer_cycles"):
            assert key in stats
        assert 0.0 < stats["local_hit_rate"] < 1.0
        assert stats["local_transfer_cycles"] > 0

    def test_local_store_is_offchip_neutral_but_costs_time_and_energy(self):
        """The inclusive write-through local level never changes off-chip
        traffic under the (order-insensitive) greedy policy, but the
        shared-to-local transfers lengthen the schedule and burn on-chip
        energy."""
        base = make_runtime(timing="memoized")
        two = make_runtime(timing="memoized", local_store_kb=2.0)
        b = base.run_blocked_cholesky(48, np.random.default_rng(0), verify=False)
        t = two.run_blocked_cholesky(48, np.random.default_rng(0), verify=False)
        assert t["offchip_traffic_bytes"] == b["offchip_traffic_bytes"]
        assert t["spill_bytes"] == b["spill_bytes"]
        assert t["makespan_cycles"] > b["makespan_cycles"]
        assert t["energy_j"] > b["energy_j"]

    def test_full_overlap_hides_local_transfers(self):
        hidden = make_runtime(timing="memoized", local_store_kb=2.0,
                              stall_overlap=1.0)
        compute_only = make_runtime(timing="memoized", memory=False)
        h = hidden.run_blocked_cholesky(48, np.random.default_rng(0),
                                        verify=False)
        c = compute_only.run_blocked_cholesky(48, np.random.default_rng(0),
                                              verify=False)
        assert h["local_transfer_cycles"] > 0     # still reported
        assert h["makespan_cycles"] == c["makespan_cycles"]

    @pytest.mark.parametrize("workload,n", [("lu", 40), ("qr", 32)])
    @pytest.mark.parametrize("local_kb", [1.0, 2.0])
    def test_smart_policies_spill_strictly_less_under_pressure(
            self, workload, n, local_kb):
        """Acceptance: with a finite local store and a pressured shared
        level, memory_aware and affinity move strictly fewer off-chip spill
        bytes than greedy."""
        spills = {}
        for policy in ("greedy", "memory_aware", "affinity"):
            runtime = make_runtime(timing="memoized", policy=policy,
                                   on_chip_kb=4.0, local_store_kb=local_kb)
            stats = runtime.run_workload(workload, n,
                                         np.random.default_rng(0),
                                         verify=False)
            spills[policy] = stats["spill_bytes"]
        assert spills["memory_aware"] < spills["greedy"]
        assert spills["affinity"] < spills["greedy"]

    def test_affinity_raises_local_hit_rate_over_greedy(self):
        rates = {}
        for policy in ("greedy", "affinity"):
            runtime = make_runtime(timing="memoized", policy=policy,
                                   local_store_kb=2.0)
            stats = runtime.run_blocked_cholesky(48, np.random.default_rng(0),
                                                 verify=False)
            rates[policy] = stats["local_hit_rate"]
        assert rates["affinity"] > rates["greedy"]

    def test_affinity_degrades_to_greedy_without_local_stores(self):
        affinity = make_runtime(policy="affinity", memory=False)
        greedy = make_runtime(policy="greedy", memory=False)
        a = affinity.run_blocked_cholesky(32, np.random.default_rng(0))
        g = greedy.run_blocked_cholesky(32, np.random.default_rng(0))
        assert a["makespan_cycles"] == g["makespan_cycles"]
        assert a["per_core_busy_cycles"] == g["per_core_busy_cycles"]

    def test_affinity_schedule_stays_valid(self):
        runtime = make_runtime(timing="memoized", policy="affinity",
                               on_chip_kb=4.0, local_store_kb=2.0)
        stats = runtime.run_blocked_cholesky(48, np.random.default_rng(0),
                                             verify=True)
        assert stats["residual"] < 1e-8
        graph = AlgorithmsByBlocks(8).cholesky_tasks(48)
        end_by_id = {e.task_id: e.end_cycle for e in runtime.executions}
        for execution in runtime.executions:
            task = graph.task(execution.task_id)
            ready = max((end_by_id[d] for d in task.depends_on), default=0)
            assert execution.start_cycle >= ready

    def test_per_task_local_accounting_sums_to_totals(self):
        runtime = make_runtime(timing="memoized", local_store_kb=2.0)
        stats = runtime.run_blocked_cholesky(48, np.random.default_rng(0),
                                             verify=False)
        transfers = sum(e.local_transfer_cycles for e in runtime.executions)
        assert transfers == pytest.approx(stats["local_transfer_cycles"])
        hits = sum(e.local_hit_bytes for e in runtime.executions)
        assert hits == pytest.approx(stats["local_hit_bytes"])


# -------------------------------------------- single-level equivalence pins
class TestSingleLevelEquivalence:
    """``local_store_kb=None`` must reproduce the single-level runtime
    byte for byte: the PR 4 runner golden and the PR 3 schedule golden."""

    def test_explicit_none_matches_runner_memory_golden(self):
        runner = get_runner("lap_runtime")
        golden_rows = json.loads(GOLDEN.read_text())
        for case, expected in zip(GOLDEN_CASES, golden_rows):
            row = runner(dict(case, local_store_kb=None))
            assert row == expected  # byte-identical, not approx

    @pytest.mark.parametrize(
        "row",
        json.loads((pathlib.Path(__file__).resolve().parent
                    / "goldens" / "runtime" / "lap_runtime.json").read_text()),
        ids=lambda r: f"{r['algorithm']}-n{r['n']}-c{r['num_cores']}")
    def test_explicit_none_matches_pre_refactor_schedules(self, row):
        runtime = make_runtime(num_cores=row["num_cores"], tile=row["tile"],
                               nr=row["nr"], onchip_mbytes=1.0,
                               local_store_kb=None, stall_overlap=0.0)
        stats = runtime.run_workload(row["algorithm"], row["n"],
                                     np.random.default_rng(row["seed"]))
        assert stats["makespan_cycles"] == row["makespan_cycles"]
        assert stats["per_core_busy_cycles"] == row["per_core_busy_cycles"]
        assert stats["parallel_efficiency"] == row["parallel_efficiency"]
        assert stats["residual"] == row["residual"]


# --------------------------------------------- runtime_energy_pareto golden
def test_runtime_energy_pareto_golden_frontier():
    """Acceptance: the committed energy/runtime sweep has a non-degenerate
    Pareto frontier (>= 3 distinct points), its energy terms add up, and
    the frontier is internally consistent (no frontier row dominates
    another)."""
    golden = json.loads((pathlib.Path(__file__).resolve().parent
                         / "goldens" / "runtime_energy_pareto.json").read_text())
    assert len(golden) > 10
    for row in golden:
        assert row["total_energy_j"] == pytest.approx(
            row["dynamic_energy_j"] + row["static_energy_j"])
    frontier = [row for row in golden if row["on_frontier"]]
    distinct = {(row["total_energy_j"], row["makespan_cycles"])
                for row in frontier}
    assert len(distinct) >= 3
    for a in frontier:
        for b in frontier:
            assert not (a["total_energy_j"] < b["total_energy_j"]
                        and a["makespan_cycles"] < b["makespan_cycles"])
    # Every off-frontier row is dominated (weakly on one axis, strictly
    # overall) by some frontier row.
    for row in golden:
        if row["on_frontier"]:
            continue
        assert any(f["total_energy_j"] <= row["total_energy_j"]
                   and f["makespan_cycles"] <= row["makespan_cycles"]
                   and (f["total_energy_j"] < row["total_energy_j"]
                        or f["makespan_cycles"] < row["makespan_cycles"])
                   for f in frontier)


def test_lap_runtime_rows_expose_local_store_columns():
    runner = get_runner("lap_runtime")
    row = runner({"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2,
                  "nr": 4, "seed": 0, "timing": "memoized", "verify": False,
                  "on_chip_kb": 6.0, "local_store_kb": 2.0,
                  "stall_overlap": 0.5})
    for column in ("local_store_kb", "local_hit_bytes", "shared_to_local_bytes",
                   "c2c_bytes", "local_hit_rate", "local_transfer_cycles",
                   "peak_local_resident_kb", "stall_overlap"):
        assert column in row
    assert row["local_store_kb"] == 2.0
    assert row["stall_overlap"] == 0.5
    assert 0.0 < row["local_hit_rate"] < 1.0
    # Without the parameters the columns stay absent (golden compatibility).
    plain = runner({"algorithm": "cholesky", "n": 48, "tile": 8,
                    "num_cores": 2, "nr": 4, "seed": 0, "timing": "memoized",
                    "verify": False, "on_chip_kb": 6.0})
    assert "local_hit_rate" not in plain and "stall_overlap" not in plain


def test_lap_runtime_rows_expose_memory_columns():
    row = _golden_rows()[1]
    for column in ("traffic_bytes", "compulsory_bytes", "spill_bytes",
                   "stall_cycles", "energy_j", "gflops_per_w",
                   "arithmetic_intensity", "on_chip_kb", "bandwidth_gbs"):
        assert column in row
    assert row["spill_bytes"] > 0
    assert row["stall_cycles"] > 0
    # memory=False keeps the row compute-only.
    runner = get_runner("lap_runtime")
    lean = runner({"algorithm": "gemm", "n": 16, "tile": 8, "num_cores": 2,
                   "memory": False})
    assert "traffic_bytes" not in lean and lean["memory"] is False
