"""Tests for the broadcast-bus wire model."""

import pytest

from repro.hw.bus import BroadcastBus, WireClass, BUS_AREA_PER_PE_MM2


def test_default_4pe_bus_needs_no_repeaters():
    bus = BroadcastBus(span_pes=4, pe_pitch_mm=0.4)
    assert not bus.needs_repeaters


def test_long_bus_needs_repeaters():
    bus = BroadcastBus(span_pes=16, pe_pitch_mm=0.4, latency_overhead=0.0)
    assert bus.needs_repeaters


def test_wire_model_frequency_targets():
    """4- and 8-PE buses should reach > 2.2 GHz; a 16-PE bus > 1.4 GHz."""
    assert BroadcastBus(span_pes=4).max_frequency_ghz > 2.2
    assert BroadcastBus(span_pes=8).max_frequency_ghz > 1.6
    assert BroadcastBus(span_pes=16).max_frequency_ghz > 1.2


def test_single_cycle_broadcast_when_bus_keeps_up():
    bus = BroadcastBus(span_pes=4)
    assert bus.broadcast_latency_cycles(1.0) == 1
    assert bus.broadcast_latency_cycles(2.0) == 1


def test_pipelined_broadcast_when_core_clock_exceeds_bus():
    bus = BroadcastBus(span_pes=16)
    fast_clock = bus.max_frequency_ghz * 2.5
    assert bus.broadcast_latency_cycles(fast_clock) >= 2


def test_energy_grows_with_width_and_length():
    narrow = BroadcastBus(width_bits=32, span_pes=4)
    wide = BroadcastBus(width_bits=64, span_pes=4)
    long = BroadcastBus(width_bits=64, span_pes=8)
    assert wide.energy_per_broadcast_j > narrow.energy_per_broadcast_j
    assert long.energy_per_broadcast_j > wide.energy_per_broadcast_j


def test_latency_overhead_wire_saves_energy():
    fast = BroadcastBus(latency_overhead=0.0)
    relaxed = BroadcastBus(latency_overhead=0.30)
    assert relaxed.energy_per_broadcast_j < fast.energy_per_broadcast_j
    assert relaxed.max_frequency_ghz < fast.max_frequency_ghz


def test_bus_power_is_small_compared_to_a_double_precision_mac():
    """The paper argues bus power is negligible at the core level."""
    bus = BroadcastBus(width_bits=64, span_pes=4)
    power = bus.dynamic_power_w(1.0, broadcasts_per_cycle=1.0)
    assert power < 5e-3  # well under one DP MAC (~40 mW)


def test_bus_area_fraction_of_pe_budget():
    bus = BroadcastBus(span_pes=4)
    assert bus.area_mm2 == pytest.approx(0.5 * BUS_AREA_PER_PE_MM2 * 4)


def test_validation_of_parameters():
    with pytest.raises(ValueError):
        BroadcastBus(width_bits=0)
    with pytest.raises(ValueError):
        BroadcastBus(span_pes=0)
    with pytest.raises(ValueError):
        BroadcastBus(latency_overhead=2.0)
    with pytest.raises(ValueError):
        BroadcastBus().broadcast_latency_cycles(0.0)
    with pytest.raises(ValueError):
        BroadcastBus().dynamic_power_w(1.0, broadcasts_per_cycle=-1.0)


def test_wire_classes_order_by_energy():
    local = BroadcastBus(wire_class=WireClass.FAST_LOCAL)
    semi = BroadcastBus(wire_class=WireClass.SEMI_GLOBAL)
    glob = BroadcastBus(wire_class=WireClass.GLOBAL)
    assert local.energy_per_broadcast_j < semi.energy_per_broadcast_j < glob.energy_per_broadcast_j
