"""Tests for the FMAC unit model."""

import pytest

from repro.hw.fpu import FMACUnit, Precision


def test_precision_byte_widths():
    assert Precision.SINGLE.bytes == 4
    assert Precision.DOUBLE.bytes == 8
    assert Precision.SINGLE.bits == 32
    assert Precision.DOUBLE.bits == 64


def test_double_precision_is_bigger_and_hungrier_than_single():
    sp = FMACUnit(precision=Precision.SINGLE, frequency_ghz=1.0)
    dp = FMACUnit(precision=Precision.DOUBLE, frequency_ghz=1.0)
    assert dp.area_mm2 > sp.area_mm2
    assert dp.dynamic_power_w > sp.dynamic_power_w


def test_reference_point_matches_paper_constants():
    """At ~1 GHz the paper quotes SP ~8-10 mW / 0.01 mm^2, DP ~40-50 mW / 0.04 mm^2."""
    sp = FMACUnit(precision=Precision.SINGLE, frequency_ghz=1.0)
    dp = FMACUnit(precision=Precision.DOUBLE, frequency_ghz=1.0)
    assert 0.008 <= sp.area_mm2 <= 0.012
    assert 0.035 <= dp.area_mm2 <= 0.045
    assert 6e-3 <= sp.dynamic_power_w <= 12e-3
    assert 25e-3 <= dp.dynamic_power_w <= 55e-3


def test_power_grows_superlinearly_with_frequency():
    low = FMACUnit(frequency_ghz=0.5)
    high = FMACUnit(frequency_ghz=2.0)
    ratio = high.dynamic_power_w / low.dynamic_power_w
    assert ratio > 4.0  # f ratio is 4, voltage scaling adds more


def test_peak_gflops_counts_two_flops_per_mac():
    unit = FMACUnit(frequency_ghz=1.5)
    assert unit.peak_gflops == pytest.approx(3.0)


def test_delayed_normalization_saves_power():
    with_dn = FMACUnit(delayed_normalization=True)
    without = FMACUnit(delayed_normalization=False)
    assert with_dn.dynamic_power_w < without.dynamic_power_w


def test_extensions_add_small_overheads():
    base = FMACUnit()
    extended = base.with_extensions(comparator=True, extended_exponent=True)
    assert extended.area_mm2 > base.area_mm2
    assert extended.dynamic_power_w > base.dynamic_power_w
    # The overheads are small (a few percent), not a redesign.
    assert extended.area_mm2 < 1.10 * base.area_mm2
    assert extended.dynamic_power_w < 1.10 * base.dynamic_power_w


def test_energy_per_mac_consistent_with_power():
    unit = FMACUnit(frequency_ghz=1.0)
    assert unit.energy_per_mac_j == pytest.approx(unit.dynamic_power_w / 1e9)


def test_idle_power_is_leakage_fraction_of_dynamic():
    unit = FMACUnit()
    assert unit.idle_power_w == pytest.approx(unit.dynamic_power_w * unit.node.leakage_fraction)


def test_at_frequency_returns_new_instance():
    unit = FMACUnit(frequency_ghz=1.0)
    faster = unit.at_frequency(2.0)
    assert faster.frequency_ghz == 2.0
    assert unit.frequency_ghz == 1.0


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        FMACUnit(pipeline_stages=0)
    with pytest.raises(ValueError):
        FMACUnit(frequency_ghz=-1.0)


def test_describe_mentions_precision_and_frequency():
    text = FMACUnit(precision=Precision.DOUBLE, frequency_ghz=1.25).describe()
    assert "double" in text
    assert "1.25" in text


def test_efficiency_improves_at_lower_frequency():
    """The GFLOPS/W of the bare unit improves as frequency (and voltage) drop."""
    slow = FMACUnit(frequency_ghz=0.33)
    fast = FMACUnit(frequency_ghz=1.81)
    assert slow.gflops_per_watt > fast.gflops_per_watt
    assert fast.gflops_per_mm2 > slow.gflops_per_mm2
