"""Tests for the power aggregation model and the efficiency metrics."""

import pytest

from repro.models.efficiency import EfficiencyMetrics
from repro.models.power import PowerBreakdown, PowerComponent, PowerModel


# ----------------------------------------------------------------- power
def test_total_power_is_dynamic_plus_idle():
    model = PowerModel(idle_ratio=0.25)
    breakdown = model.breakdown("x", [PowerComponent("FPU", 10.0, 1.0),
                                      PowerComponent("SRAM", 4.0, 0.5)], gflops=10.0)
    assert breakdown.dynamic_power_w == pytest.approx(12.0)
    assert breakdown.idle_power_w == pytest.approx(3.0)
    assert breakdown.total_power_w == pytest.approx(15.0)


def test_activity_factor_scales_dynamic_power():
    busy = PowerComponent("FPU", 10.0, 1.0)
    half = busy.with_activity(0.5)
    assert half.dynamic_power_w == pytest.approx(5.0)
    assert busy.dynamic_power_w == pytest.approx(10.0)


def test_component_validation():
    with pytest.raises(ValueError):
        PowerComponent("bad", -1.0)
    with pytest.raises(ValueError):
        PowerComponent("bad", 1.0, activity=1.5)


def test_breakdown_by_component_and_category():
    model = PowerModel(idle_ratio=0.3)
    bd = model.breakdown("arch", [
        PowerComponent("FPU", 5.0, 1.0, category="compute"),
        PowerComponent("RF", 6.0, 1.0, category="overhead", essential=False),
        PowerComponent("L1", 2.0, 0.5, category="memory"),
    ], gflops=20.0)
    by_comp = bd.by_component()
    assert by_comp["FPU"] == 5.0
    assert "Idle/Leakage" in by_comp
    by_cat = bd.by_category()
    assert by_cat["overhead"] == 6.0
    assert by_cat["idle"] == pytest.approx(0.3 * 12.0)


def test_overhead_fraction_identifies_non_essential_components():
    model = PowerModel()
    bd = model.breakdown("gpu-ish", [
        PowerComponent("FPU", 3.0, 1.0, essential=True),
        PowerComponent("RegFile", 6.0, 1.0, essential=False),
        PowerComponent("ICache", 1.0, 1.0, essential=False),
    ], gflops=10.0)
    assert bd.overhead_fraction() == pytest.approx(7.0 / 10.0)


def test_normalized_by_performance_requires_throughput():
    model = PowerModel()
    bd = model.breakdown("idle", [PowerComponent("FPU", 1.0, 0.0)], gflops=0.0)
    with pytest.raises(ValueError):
        bd.normalized_by_performance()


def test_gflops_per_watt_and_scaling():
    model = PowerModel(idle_ratio=0.0)
    bd = model.breakdown("x", [PowerComponent("FPU", 10.0, 1.0)], gflops=100.0)
    assert bd.gflops_per_watt == pytest.approx(10.0)
    scaled = bd.scaled(0.5, label="y")
    assert scaled.total_power_w == pytest.approx(5.0)
    assert scaled.label == "y"
    with pytest.raises(ValueError):
        bd.scaled(-1.0)


def test_power_model_validation():
    with pytest.raises(ValueError):
        PowerModel(idle_ratio=1.5)
    model = PowerModel()
    with pytest.raises(ValueError):
        model.breakdown("empty", [], gflops=1.0)
    with pytest.raises(ValueError):
        model.breakdown("neg", [PowerComponent("x", 1.0)], gflops=-1.0)
    assert model.memory_activity_from_access_rate(0.5, ports=2) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        model.memory_activity_from_access_rate(-1.0)
    with pytest.raises(ValueError):
        model.memory_activity_from_access_rate(1.0, ports=0)


# ------------------------------------------------------------ efficiency
def test_efficiency_metric_definitions():
    eff = EfficiencyMetrics(label="x", gflops=100.0, power_w=2.0, area_mm2=5.0,
                            utilization=0.9)
    assert eff.gflops_per_watt == pytest.approx(50.0)
    assert eff.gflops_per_mm2 == pytest.approx(20.0)
    assert eff.watts_per_mm2 == pytest.approx(0.4)
    assert eff.energy_delay == pytest.approx(2.0 / 100.0 ** 2)
    assert eff.inverse_energy_delay == pytest.approx(100.0 ** 2 / 2.0)
    assert eff.mm2_per_gflop == pytest.approx(0.05)
    assert eff.mw_per_gflop == pytest.approx(20.0)


def test_efficiency_ratio_to_other_design():
    lap = EfficiencyMetrics("lap", gflops=600.0, power_w=30.0, area_mm2=120.0)
    gpu = EfficiencyMetrics("gpu", gflops=470.0, power_w=180.0, area_mm2=500.0)
    ratios = lap.ratio_to(gpu)
    assert ratios["gflops_per_watt"] > 5.0
    assert ratios["gflops_per_mm2"] > 1.0


def test_efficiency_as_row_contains_expected_keys():
    row = EfficiencyMetrics("x", 10.0, 1.0, 2.0, 0.5, precision="double").as_row()
    for key in ("label", "gflops", "gflops_per_w", "gflops_per_mm2", "utilization_pct"):
        assert key in row
    assert row["utilization_pct"] == 50.0


def test_efficiency_validation():
    with pytest.raises(ValueError):
        EfficiencyMetrics("x", gflops=-1.0, power_w=1.0, area_mm2=1.0)
    with pytest.raises(ValueError):
        EfficiencyMetrics("x", gflops=1.0, power_w=0.0, area_mm2=1.0)
    with pytest.raises(ValueError):
        EfficiencyMetrics("x", gflops=1.0, power_w=1.0, area_mm2=0.0)
    with pytest.raises(ValueError):
        EfficiencyMetrics("x", gflops=1.0, power_w=1.0, area_mm2=1.0, utilization=1.5)


def test_zero_throughput_edge_cases():
    eff = EfficiencyMetrics("idle", gflops=0.0, power_w=1.0, area_mm2=1.0)
    assert eff.energy_delay == float("inf")
    assert eff.mm2_per_gflop == float("inf")
    assert eff.mw_per_gflop == float("inf")
    assert eff.inverse_energy_delay == 0.0
