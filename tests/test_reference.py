"""Tests for the NumPy reference implementations themselves.

The references are the ground truth for the simulator tests, so they get
their own independent checks against numpy/scipy-style identities.
"""

import numpy as np
import pytest

from repro.reference import (ref_cholesky, ref_dft, ref_fft_radix4, ref_gemm,
                             ref_householder_qr, ref_householder_vector,
                             ref_lu_partial_pivoting, ref_symm, ref_syr2k, ref_syrk,
                             ref_trmm, ref_trsm, ref_vector_norm)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


def test_ref_gemm_matches_numpy(rng):
    a, b, c = rng.random((5, 7)), rng.random((7, 3)), rng.random((5, 3))
    np.testing.assert_allclose(ref_gemm(c, a, b), c + a @ b)
    with pytest.raises(ValueError):
        ref_gemm(c, a, rng.random((5, 3)))
    with pytest.raises(ValueError):
        ref_gemm(rng.random((2, 2)), a, b)


def test_ref_symm_uses_only_lower_triangle(rng):
    a = np.tril(rng.random((6, 6)))
    b = rng.random((6, 4))
    c = rng.random((6, 4))
    sym = np.tril(a) + np.tril(a, -1).T
    np.testing.assert_allclose(ref_symm(c, a, b), c + sym @ b)


def test_ref_trmm_and_trsm_are_inverse_operations(rng):
    l = np.tril(rng.random((6, 6))) + 6 * np.eye(6)
    b = rng.random((6, 5))
    product = ref_trmm(l, b)
    recovered = ref_trsm(l, product)
    np.testing.assert_allclose(recovered, b, rtol=1e-10)


def test_ref_trsm_rejects_singular(rng):
    l = np.tril(rng.random((4, 4)))
    l[2, 2] = 0.0
    with pytest.raises(ValueError):
        ref_trsm(l, rng.random((4, 2)))


def test_ref_syrk_and_syr2k_lower_triangles(rng):
    c = rng.random((6, 6))
    a = rng.random((6, 4))
    b = rng.random((6, 4))
    syrk = ref_syrk(c, a)
    full = c + a @ a.T
    np.testing.assert_allclose(np.tril(syrk), np.tril(full))
    np.testing.assert_allclose(np.triu(syrk, 1), np.triu(c, 1))
    syr2k = ref_syr2k(c, a, b)
    full2 = c + a @ b.T + b @ a.T
    np.testing.assert_allclose(np.tril(syr2k), np.tril(full2))


def test_ref_cholesky_against_numpy(rng):
    m = rng.random((6, 6))
    a = m @ m.T + 6 * np.eye(6)
    np.testing.assert_allclose(ref_cholesky(a), np.linalg.cholesky(a), rtol=1e-10)
    with pytest.raises(ValueError):
        ref_cholesky(rng.random((4, 4)))
    with pytest.raises(ValueError):
        ref_cholesky(-np.eye(4))


def test_ref_lu_reconstructs_and_pivots(rng):
    a = rng.random((7, 7))
    p, l, u = ref_lu_partial_pivoting(a)
    np.testing.assert_allclose(p @ a, l @ u, rtol=1e-10, atol=1e-12)
    assert np.max(np.abs(np.tril(l, -1))) <= 1.0 + 1e-12
    np.testing.assert_allclose(np.diag(l), np.ones(7))
    with pytest.raises(ValueError):
        ref_lu_partial_pivoting(np.zeros((4, 4)))


def test_ref_vector_norm_matches_numpy_and_is_safe(rng):
    x = rng.standard_normal(100)
    assert ref_vector_norm(x) == pytest.approx(np.linalg.norm(x), rel=1e-12)
    assert ref_vector_norm(np.zeros(5)) == 0.0
    assert ref_vector_norm(np.array([])) == 0.0
    huge = np.full(4, 1e250)
    assert np.isfinite(ref_vector_norm(huge))
    assert ref_vector_norm(huge) == pytest.approx(2e250, rel=1e-12)


def test_ref_householder_vector_annihilates_tail(rng):
    x = rng.standard_normal(6)
    rho, u2, tau = ref_householder_vector(x)
    u = np.concatenate(([1.0], u2))
    h = np.eye(6) - np.outer(u, u) / tau
    reflected = h @ x
    assert reflected[0] == pytest.approx(rho, rel=1e-12)
    np.testing.assert_allclose(reflected[1:], 0.0, atol=1e-12)
    # Norm is preserved by the reflection.
    assert abs(rho) == pytest.approx(np.linalg.norm(x), rel=1e-12)


def test_ref_householder_vector_zero_tail():
    rho, u2, tau = ref_householder_vector(np.array([3.0, 0.0, 0.0]))
    assert rho == pytest.approx(3.0)
    assert tau == float("inf")
    with pytest.raises(ValueError):
        ref_householder_vector(np.array([]))


def test_ref_householder_qr_identities(rng):
    a = rng.random((8, 5))
    q, r = ref_householder_qr(a)
    np.testing.assert_allclose(q @ r, a, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(q.T @ q, np.eye(5), atol=1e-10)
    np.testing.assert_allclose(r, np.triu(r))
    with pytest.raises(ValueError):
        ref_householder_qr(rng.random((3, 5)))


def test_ref_qr_matches_numpy_up_to_signs(rng):
    a = rng.random((6, 6))
    _, r = ref_householder_qr(a)
    _, r_np = np.linalg.qr(a)
    np.testing.assert_allclose(np.abs(r), np.abs(r_np), rtol=1e-9)


def test_ref_fft_implementations_agree(rng):
    x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    np.testing.assert_allclose(ref_fft_radix4(x), np.fft.fft(x), rtol=1e-10, atol=1e-10)
    np.testing.assert_allclose(ref_dft(x), np.fft.fft(x), rtol=1e-8, atol=1e-8)
    with pytest.raises(ValueError):
        ref_fft_radix4(rng.standard_normal(24))
    assert ref_dft(np.array([], dtype=complex)).size == 0
