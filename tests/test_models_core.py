"""Tests for the core-level analytical GEMM model (Chapter 3)."""

import pytest

from repro.models.core_model import CoreGEMMModel


@pytest.fixture
def model():
    return CoreGEMMModel(nr=4)


def test_peak_compute_cycles(model):
    res = model.cycles(mc=64, kc=64, n=512, bandwidth_elements_per_cycle=1e9)
    assert res.peak_cycles == pytest.approx(64 * 64 * 512 / 16)
    assert res.utilization == pytest.approx(1.0)


def test_utilization_decreases_with_lower_bandwidth(model):
    high = model.utilization(mc=64, kc=64, n=512, bandwidth_elements_per_cycle=4.0)
    low = model.utilization(mc=64, kc=64, n=512, bandwidth_elements_per_cycle=0.25)
    assert high > low
    assert 0.0 < low < 1.0


def test_utilization_increases_with_local_store(model):
    """Bigger blockings (more local store) tolerate less bandwidth (Fig. 3.4)."""
    small = model.utilization(mc=32, kc=32, n=512, bandwidth_elements_per_cycle=0.5)
    large = model.utilization(mc=256, kc=256, n=512, bandwidth_elements_per_cycle=0.5)
    assert large > small


def test_local_store_formula(model):
    """Aggregate: mc*kc + 2*kc*nr^2 (partial) or 2*mc*kc + 2*kc*nr^2 (full)."""
    partial = model.local_store_elements_per_pe(mc=64, kc=64, full_overlap=False)
    full = model.local_store_elements_per_pe(mc=64, kc=64, full_overlap=True)
    assert partial == pytest.approx((64 * 64 + 2 * 64 * 16) / 16)
    assert full == pytest.approx((2 * 64 * 64 + 2 * 64 * 16) / 16)
    assert model.local_store_bytes_per_pe(64, 64) == pytest.approx(partial * 8)


def test_required_bandwidth_for_peak_formula(model):
    """(2/kc + 1/mc) * nr^2, plus nr^2/n with full overlap."""
    assert model.required_bandwidth_for_peak(mc=128, kc=128, full_overlap=False) == \
        pytest.approx((2.0 / 128 + 1.0 / 128) * 16)
    assert model.required_bandwidth_for_peak(mc=128, kc=128, n=512, full_overlap=True) == \
        pytest.approx((2.0 / 128 + 1.0 / 128) * 16 + 16.0 / 512)


def test_doubling_nr_quadruples_performance_and_doubles_bandwidth():
    """Fig. 3.5 insight: at fixed local store, nr=8 needs ~2x the bandwidth of nr=4."""
    m4 = CoreGEMMModel(nr=4)
    m8 = CoreGEMMModel(nr=8)
    bw4 = m4.required_bandwidth_for_peak(mc=128, kc=128, full_overlap=False)
    bw8 = m8.required_bandwidth_for_peak(mc=128, kc=128, full_overlap=False)
    assert bw8 == pytest.approx(4.0 * bw4)  # per the nr^2 factor
    assert m8.peak_gflops(1.0) == pytest.approx(4.0 * m4.peak_gflops(1.0))


def test_full_overlap_needs_no_separate_a_load_time(model):
    partial = model.cycles(mc=256, kc=256, n=512, bandwidth_elements_per_cycle=2.0,
                           full_overlap=False)
    full = model.cycles(mc=256, kc=256, n=512, bandwidth_elements_per_cycle=2.0,
                        full_overlap=True)
    assert full.total_cycles <= partial.total_cycles
    assert full.local_store_elements_per_pe > partial.local_store_elements_per_pe


def test_paper_design_point_reaches_high_utilization(model):
    """At ~20 KB/PE local store and 4 B/cycle the core should be near peak."""
    kc = model.smallest_kc_for_peak(bandwidth_elements_per_cycle=4.0 / 8.0, n=512)
    assert kc is not None
    store_kb = model.local_store_bytes_per_pe(kc, kc, full_overlap=True) / 1024.0
    assert store_kb <= 40.0
    util = model.utilization(mc=256, kc=256, n=512, bandwidth_elements_per_cycle=0.5)
    assert util > 0.9


def test_sweep_and_peak_tables(model):
    sweep = model.sweep_local_store(bandwidths=[0.5, 1.0], kc_values=[32, 64, 128], n=512)
    assert len(sweep) == 6
    assert all(0.0 < r.utilization <= 1.0 for r in sweep)
    table = model.peak_bandwidth_vs_local_store(kc_values=[32, 64, 128])
    assert len(table) == 3
    # Bandwidth needed for peak decreases as the local store grows.
    assert table[0]["bandwidth_bytes_per_cycle"] > table[-1]["bandwidth_bytes_per_cycle"]


def test_smallest_kc_for_peak_none_when_bandwidth_too_low(model):
    assert model.smallest_kc_for_peak(bandwidth_elements_per_cycle=1e-6, n=512,
                                      kc_limit=512) is None


def test_input_validation(model):
    with pytest.raises(ValueError):
        CoreGEMMModel(nr=1)
    with pytest.raises(ValueError):
        CoreGEMMModel(element_bytes=2)
    with pytest.raises(ValueError):
        model.cycles(mc=0, kc=64, n=512, bandwidth_elements_per_cycle=1.0)
    with pytest.raises(ValueError):
        model.cycles(mc=64, kc=64, n=0, bandwidth_elements_per_cycle=1.0)
    with pytest.raises(ValueError):
        model.cycles(mc=64, kc=64, n=512, bandwidth_elements_per_cycle=0.0)
    with pytest.raises(ValueError):
        model.peak_gflops(0.0)
    with pytest.raises(ValueError):
        model.smallest_kc_for_peak(0.0)
