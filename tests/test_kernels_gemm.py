"""Functional and cycle-count tests for GEMM on the LAC simulator."""

import numpy as np
import pytest

from repro.kernels.common import pad_to_multiple
from repro.kernels.gemm import lac_gemm, lac_gemm_steady_state_cycles, lac_rank1_sequence
from repro.lac.core import LACConfig, LinearAlgebraCore
from repro.reference import ref_gemm


@pytest.fixture
def core():
    return LinearAlgebraCore()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def test_rank1_sequence_matches_numpy(core, rng):
    c = rng.random((4, 4))
    a = rng.random((4, 16))
    b = rng.random((16, 4))
    out = lac_rank1_sequence(core, c, a, b)
    np.testing.assert_allclose(out, c + a @ b, rtol=1e-12)


def test_rank1_sequence_shape_validation(core):
    with pytest.raises(ValueError):
        lac_rank1_sequence(core, np.zeros((3, 3)), np.zeros((4, 8)), np.zeros((8, 4)))
    with pytest.raises(ValueError):
        lac_rank1_sequence(core, np.zeros((4, 4)), np.zeros((4, 8)), np.zeros((6, 4)))


@pytest.mark.parametrize("m,k,n", [(4, 4, 4), (8, 8, 8), (8, 16, 4), (12, 8, 16)])
def test_gemm_matches_reference(core, rng, m, k, n):
    c = rng.random((m, n))
    a = rng.random((m, k))
    b = rng.random((k, n))
    result = lac_gemm(core, c, a, b)
    np.testing.assert_allclose(result.output, ref_gemm(c, a, b), rtol=1e-12)


def test_gemm_counts_exact_number_of_macs(core, rng):
    m, k, n = 8, 8, 8
    result = lac_gemm(core, rng.random((m, n)), rng.random((m, k)), rng.random((k, n)))
    assert result.counters.mac_ops == m * k * n


def test_gemm_does_not_modify_inputs(core, rng):
    c = rng.random((8, 8))
    c_before = c.copy()
    lac_gemm(core, c, rng.random((8, 8)), rng.random((8, 8)))
    np.testing.assert_array_equal(c, c_before)


def test_gemm_dimension_validation(core, rng):
    with pytest.raises(ValueError):
        lac_gemm(core, rng.random((8, 8)), rng.random((8, 6)), rng.random((6, 8)))
    with pytest.raises(ValueError):
        lac_gemm(core, rng.random((8, 9)), rng.random((8, 8)), rng.random((8, 8)))
    with pytest.raises(ValueError):
        lac_gemm(core, rng.random((6, 8)), rng.random((6, 8)), rng.random((8, 8)))


def test_gemm_on_8x8_core(rng):
    core8 = LinearAlgebraCore(LACConfig(nr=8))
    c = rng.random((16, 16))
    a = rng.random((16, 8))
    b = rng.random((8, 16))
    result = lac_gemm(core8, c, a, b)
    np.testing.assert_allclose(result.output, c + a @ b, rtol=1e-12)
    assert result.num_pes == 64


def test_gemm_utilization_improves_with_problem_size(rng):
    small_core = LinearAlgebraCore()
    big_core = LinearAlgebraCore()
    small = lac_gemm(small_core, np.zeros((4, 4)), rng.random((4, 4)), rng.random((4, 4)))
    big = lac_gemm(big_core, np.zeros((16, 16)), rng.random((16, 32)), rng.random((32, 16)))
    assert big.utilization > small.utilization


def test_steady_state_cycle_formula_matches_rank1_count():
    assert lac_gemm_steady_state_cycles(4, 16, 32, 8) == (16 // 4) * (8 // 4) * 32
    with pytest.raises(ValueError):
        lac_gemm_steady_state_cycles(4, 0, 8, 8)


def test_kernel_result_gflops_positive(core, rng):
    result = lac_gemm(core, np.zeros((8, 8)), rng.random((8, 8)), rng.random((8, 8)))
    assert result.gflops(1.0) > 0.0
    with pytest.raises(ValueError):
        result.gflops(0.0)


def test_pad_to_multiple_helper():
    m = np.ones((5, 7))
    padded = pad_to_multiple(m, 4)
    assert padded.shape == (8, 8)
    np.testing.assert_array_equal(padded[:5, :7], m)
    assert padded[5:, :].sum() == 0.0
    with pytest.raises(ValueError):
        pad_to_multiple(np.ones(3), 4)
    with pytest.raises(ValueError):
        pad_to_multiple(m, 0)


def test_gemm_zero_matrices(core):
    result = lac_gemm(core, np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((4, 4)))
    np.testing.assert_array_equal(result.output, np.zeros((4, 4)))


def test_gemm_identity_multiplication(core):
    identity = np.eye(8)
    b = np.arange(64, dtype=float).reshape(8, 8)
    result = lac_gemm(core, np.zeros((8, 8)), identity, b)
    np.testing.assert_allclose(result.output, b)
