"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.kernels.gemm import lac_gemm
from repro.kernels.trsm import lac_trsm
from repro.lac.core import LinearAlgebraCore
from repro.lac.stats import AccessCounters
from repro.lap.policies import GEMMScheduler
from repro.models.chip_model import ChipGEMMModel
from repro.models.core_model import CoreGEMMModel
from repro.models.power import PowerComponent, PowerModel
from repro.reference import ref_trsm, ref_vector_norm


# Reasonable bounded float strategy for matrix entries.
matrix_entries = st.floats(min_value=-100.0, max_value=100.0,
                           allow_nan=False, allow_infinity=False)


@st.composite
def small_matrix(draw, rows, cols):
    data = draw(st.lists(matrix_entries, min_size=rows * cols, max_size=rows * cols))
    return np.array(data, dtype=float).reshape(rows, cols)


# ------------------------------------------------------------ core model
@given(kc=st.integers(min_value=4, max_value=512),
       bw=st.floats(min_value=0.05, max_value=64.0),
       n=st.integers(min_value=16, max_value=2048))
@settings(max_examples=60, deadline=None)
def test_core_model_utilization_always_in_unit_interval(kc, bw, n):
    model = CoreGEMMModel(nr=4)
    res = model.cycles(mc=kc, kc=kc, n=n, bandwidth_elements_per_cycle=bw)
    assert 0.0 < res.utilization <= 1.0
    assert res.total_cycles >= res.peak_cycles


@given(kc=st.integers(min_value=4, max_value=512),
       n=st.integers(min_value=16, max_value=2048),
       bw1=st.floats(min_value=0.05, max_value=8.0),
       bw2=st.floats(min_value=0.05, max_value=8.0))
@settings(max_examples=60, deadline=None)
def test_core_model_utilization_monotone_in_bandwidth(kc, n, bw1, bw2):
    model = CoreGEMMModel(nr=4)
    lo, hi = sorted((bw1, bw2))
    u_lo = model.utilization(mc=kc, kc=kc, n=n, bandwidth_elements_per_cycle=lo)
    u_hi = model.utilization(mc=kc, kc=kc, n=n, bandwidth_elements_per_cycle=hi)
    assert u_hi >= u_lo - 1e-12


@given(kc=st.integers(min_value=4, max_value=256))
@settings(max_examples=30, deadline=None)
def test_core_model_full_overlap_never_slower(kc):
    model = CoreGEMMModel(nr=4)
    partial = model.cycles(kc, kc, 512, 1.0, full_overlap=False)
    full = model.cycles(kc, kc, 512, 1.0, full_overlap=True)
    assert full.total_cycles <= partial.total_cycles + 1e-9


# ------------------------------------------------------------ chip model
@given(num_cores=st.integers(min_value=1, max_value=32),
       kc=st.integers(min_value=8, max_value=256),
       n=st.integers(min_value=256, max_value=4096))
@settings(max_examples=50, deadline=None)
def test_chip_memory_requirement_grows_with_cores_and_problem(num_cores, kc, n):
    model = ChipGEMMModel(num_cores=num_cores, nr=4)
    base = model.onchip_memory_words(kc, kc, n)
    more_cores = ChipGEMMModel(num_cores=num_cores + 1, nr=4).onchip_memory_words(kc, kc, n)
    assert more_cores >= base
    assert base >= n * n


@given(num_cores=st.integers(min_value=1, max_value=16),
       n=st.integers(min_value=64, max_value=4096))
@settings(max_examples=50, deadline=None)
def test_offchip_bandwidth_demand_decreases_with_problem_size(num_cores, n):
    model = ChipGEMMModel(num_cores=num_cores, nr=4)
    assert model.offchip_bandwidth_words_per_cycle(n) >= \
        model.offchip_bandwidth_words_per_cycle(2 * n)


# ------------------------------------------------------------- scheduler
@given(num_cores=st.integers(min_value=1, max_value=12),
       panels=st.integers(min_value=1, max_value=24),
       mc_blocks=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_scheduler_covers_rows_exactly_once(num_cores, panels, mc_blocks):
    nr = 4
    mc = mc_blocks * nr
    n = panels * mc
    sched = GEMMScheduler(num_cores=num_cores, nr=nr)
    assignments = sched.assign_panels(n=n, mc=mc)
    covered = sorted(r for a in assignments for r in range(a.row_start, a.row_end))
    assert covered == list(range(n))
    assert all(0 <= a.core_index < num_cores for a in assignments)


# ----------------------------------------------------------- power model
@given(powers=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=8),
       activities=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=8, max_size=8),
       idle=st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=60, deadline=None)
def test_power_model_additive_and_nonnegative(powers, activities, idle):
    comps = [PowerComponent(f"c{i}", p, activities[i]) for i, p in enumerate(powers)]
    model = PowerModel(idle_ratio=idle)
    bd = model.breakdown("x", comps, gflops=1.0)
    assert bd.total_power_w >= bd.dynamic_power_w >= 0.0
    assert bd.dynamic_power_w == pytest.approx(sum(c.dynamic_power_w for c in comps))
    # Splitting a component in two must not change the total.
    if comps[0].max_power_w > 0:
        half = comps[0].max_power_w / 2.0
        split = [PowerComponent("a", half, comps[0].activity),
                 PowerComponent("b", half, comps[0].activity)] + comps[1:]
        bd_split = model.breakdown("y", split, gflops=1.0)
        assert bd_split.total_power_w == pytest.approx(bd.total_power_w)


# --------------------------------------------------------------- counters
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                          st.integers(min_value=0, max_value=1000)), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_counter_merge_is_associative_sum(pairs):
    total = AccessCounters()
    expected_cycles = 0
    expected_macs = 0
    for cycles, macs in pairs:
        total.merge(AccessCounters(cycles=cycles, mac_ops=macs))
        expected_cycles += cycles
        expected_macs += macs
    assert total.cycles == expected_cycles
    assert total.mac_ops == expected_macs
    assert 0.0 <= total.utilization(16) <= 1.0


# ------------------------------------------------- functional simulation
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_gemm_on_lac_matches_numpy_for_random_shapes(data):
    nr = 4
    m = data.draw(st.sampled_from([4, 8]))
    k = data.draw(st.sampled_from([4, 8, 12]))
    n = data.draw(st.sampled_from([4, 8]))
    a = data.draw(small_matrix(m, k))
    b = data.draw(small_matrix(k, n))
    c = data.draw(small_matrix(m, n))
    result = lac_gemm(LinearAlgebraCore(), c, a, b)
    np.testing.assert_allclose(result.output, c + a @ b, rtol=1e-9, atol=1e-9)
    assert result.counters.mac_ops == m * k * n


@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_trsm_on_lac_solves_system_for_random_triangles(data):
    k = 8
    raw = data.draw(small_matrix(k, k))
    l = np.tril(raw) + k * np.eye(k)   # well conditioned
    b = data.draw(small_matrix(k, 4))
    result = lac_trsm(LinearAlgebraCore(), l, b)
    np.testing.assert_allclose(np.tril(l) @ result.output, b, rtol=1e-8, atol=1e-8)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=64))
@settings(max_examples=60, deadline=None)
def test_reference_vector_norm_properties(values):
    x = np.array(values, dtype=float)
    norm = ref_vector_norm(x)
    assert norm >= 0.0
    assert norm == pytest.approx(np.linalg.norm(x), rel=1e-9, abs=1e-12)
    # Scaling property: ||2x|| = 2 ||x||.
    assert ref_vector_norm(2.0 * x) == pytest.approx(2.0 * norm, rel=1e-9, abs=1e-12)
