"""Tests for the chip-level LAP: scheduler, off-chip traffic and the chip object."""

import numpy as np
import pytest

from repro.hw.fpu import Precision
from repro.hw.memory import OffChipInterface
from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.offchip import OffChipTrafficModel
from repro.lap.policies import GEMMScheduler


# -------------------------------------------------------------- scheduler
def test_panel_assignment_covers_all_rows_disjointly():
    sched = GEMMScheduler(num_cores=4, nr=4)
    assignments = sched.assign_panels(n=64, mc=8)
    covered = []
    for a in assignments:
        covered.extend(range(a.row_start, a.row_end))
    assert sorted(covered) == list(range(64))
    assert len(covered) == len(set(covered))


def test_panel_assignment_round_robin_over_cores():
    sched = GEMMScheduler(num_cores=3, nr=4)
    assignments = sched.assign_panels(n=48, mc=4)
    assert [a.core_index for a in assignments[:6]] == [0, 1, 2, 0, 1, 2]


def test_load_balance_perfect_when_panels_divide_evenly():
    sched = GEMMScheduler(num_cores=4, nr=4)
    assignments = sched.assign_panels(n=64, mc=4)
    assert sched.load_balance(assignments) == pytest.approx(1.0)


def test_load_balance_reported_when_uneven():
    sched = GEMMScheduler(num_cores=3, nr=4)
    assignments = sched.assign_panels(n=16, mc=4)  # 4 panels over 3 cores
    assert sched.load_balance(assignments) == pytest.approx(0.5)


def test_choose_mc_respects_capacity_and_alignment():
    sched = GEMMScheduler(num_cores=8, nr=4)
    mc = sched.choose_mc(n=1024, onchip_capacity_words=4 * 1024 * 1024 // 8, kc=256)
    assert mc % 4 == 0
    assert mc >= 4
    tiny = sched.choose_mc(n=1024, onchip_capacity_words=1024, kc=256)
    assert tiny == 4


def test_scheduler_validation():
    with pytest.raises(ValueError):
        GEMMScheduler(num_cores=0)
    sched = GEMMScheduler(num_cores=2, nr=4)
    with pytest.raises(ValueError):
        sched.assign_panels(n=30, mc=4)
    with pytest.raises(ValueError):
        sched.assign_panels(n=32, mc=6)
    with pytest.raises(ValueError):
        sched.choose_mc(n=0, onchip_capacity_words=1024, kc=16)


# --------------------------------------------------------- off-chip model
def test_offchip_traffic_and_intensity():
    model = OffChipTrafficModel(num_cores=8, nr=4)
    summary = model.traffic(n=1024)
    assert summary.total_bytes == pytest.approx(4 * 1024 * 1024 * 8.0)
    assert summary.arithmetic_intensity == pytest.approx(2 * 1024 ** 3 / summary.total_bytes)


def test_offchip_refetch_when_c_does_not_fit():
    model = OffChipTrafficModel(num_cores=8, nr=4)
    resident = model.traffic(n=1024, onchip_fraction_of_c=1.0)
    quarter = model.traffic(n=1024, onchip_fraction_of_c=0.25)
    assert quarter.a_bytes == pytest.approx(4.0 * resident.a_bytes)
    assert quarter.c_write_bytes == resident.c_write_bytes


def test_roofline_takes_minimum_of_bounds():
    model = OffChipTrafficModel(num_cores=8, nr=4)
    iface_slow = OffChipInterface(bandwidth_gbytes_per_sec=1.0)
    iface_fast = OffChipInterface(bandwidth_gbytes_per_sec=1000.0)
    compute = model.compute_bound_gflops(1.0)
    assert model.roofline_gflops(1024, iface_fast, 1.0) == pytest.approx(compute)
    assert model.roofline_gflops(1024, iface_slow, 1.0) < compute


def test_offchip_model_validation():
    with pytest.raises(ValueError):
        OffChipTrafficModel(num_cores=0)
    model = OffChipTrafficModel(num_cores=4)
    with pytest.raises(ValueError):
        model.traffic(n=0)
    with pytest.raises(ValueError):
        model.traffic(n=64, onchip_fraction_of_c=0.0)
    with pytest.raises(ValueError):
        model.compute_bound_gflops(0.0)


# ----------------------------------------------------------------- chip
def test_lap_config_validation():
    with pytest.raises(ValueError):
        LAPConfig(num_cores=0)
    with pytest.raises(ValueError):
        LAPConfig(frequency_ghz=0.0)
    with pytest.raises(ValueError):
        LAPConfig(onchip_memory_mbytes=0.0)
    cfg = LAPConfig(precision=Precision.SINGLE)
    assert cfg.element_bytes == 4


def test_lap_peak_gflops_and_geometry():
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4, frequency_ghz=1.0))
    assert lap.num_pes == 128
    assert lap.peak_gflops() == pytest.approx(256.0)
    assert "LAP" in lap.describe()


def test_lap_run_gemm_functional_correctness():
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4, onchip_memory_mbytes=1.0))
    rng = np.random.default_rng(1)
    m = k = n = 16
    a, b, c = rng.random((m, k)), rng.random((k, n)), rng.random((m, n))
    result = lap.run_gemm(c, a, b)
    np.testing.assert_allclose(result["c"], c + a @ b, rtol=1e-12)
    assert result["chip_cycles"] > 0
    assert 0.0 < result["utilization"] <= 1.0
    assert len(result["per_core_cycles"]) == 2
    assert all(cycles > 0 for cycles in result["per_core_cycles"])


def test_lap_run_gemm_validates_shapes():
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4))
    with pytest.raises(ValueError):
        lap.run_gemm(np.zeros((8, 8)), np.zeros((8, 6)), np.zeros((6, 8)))
    with pytest.raises(ValueError):
        lap.run_gemm(np.zeros((9, 8)), np.zeros((9, 8)), np.zeros((8, 8)))


def test_lap_model_gemm_behaviour():
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4, offchip_bandwidth_gb_s=32.0))
    small = lap.model_gemm(256)
    large = lap.model_gemm(2048)
    assert large.utilization >= small.utilization
    assert large.gflops(1.0) <= lap.peak_gflops()


def test_lap_power_breakdown_and_area():
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4))
    breakdown = lap.power_breakdown(utilization=0.9)
    assert breakdown.total_power_w > 0.0
    assert breakdown.gflops_per_watt > 5.0
    # MAC units and memories should dominate; there is no instruction overhead.
    assert breakdown.overhead_fraction() == pytest.approx(0.0)
    assert lap.area_mm2() > 0.0
    with pytest.raises(ValueError):
        lap.power_breakdown(utilization=0.0)


def test_lap_double_precision_efficiency_in_paper_ballpark():
    """Chapter 4 claims roughly 15-25+ DP GFLOPS/W at the chip level."""
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4, frequency_ghz=1.0,
                                           precision=Precision.DOUBLE))
    breakdown = lap.power_breakdown(utilization=0.9)
    assert 10.0 <= breakdown.gflops_per_watt <= 60.0
