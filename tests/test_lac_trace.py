"""Tests for the execution trace module."""

import numpy as np
import pytest

from repro.kernels.gemm import lac_gemm, lac_rank1_sequence
from repro.lac.core import LinearAlgebraCore
from repro.lac.trace import ExecutionTrace


@pytest.fixture
def core():
    return LinearAlgebraCore()


def test_phase_records_cycles_and_macs(core):
    trace = ExecutionTrace(core)
    rng = np.random.default_rng(0)
    with trace.phase("distribute A"):
        core.distribute_a(rng.random((8, 8)))
    with trace.phase("rank-1 updates"):
        lac_rank1_sequence(core, np.zeros((4, 4)), rng.random((4, 8)), rng.random((8, 4)))
    assert len(trace.events) == 2
    by_phase = trace.cycles_by_phase()
    assert by_phase["distribute A"] > 0
    assert by_phase["rank-1 updates"] > 0
    assert trace.total_cycles == sum(by_phase.values())
    # Only the rank-1 phase issues MACs.
    assert trace.phases("distribute A")[0].mac_ops == 0
    assert trace.phases("rank-1 updates")[0].mac_ops == 4 * 4 * 8


def test_nested_phases_do_not_double_count(core):
    trace = ExecutionTrace(core)
    with trace.phase("outer"):
        core.tick(10)
        with trace.phase("inner"):
            core.tick(5)
    assert trace.total_cycles == 15  # outer only (inner is nested)
    inner = trace.phases("inner")[0]
    outer = trace.phases("outer")[0]
    assert inner.nesting == 1 and outer.nesting == 0
    assert inner.cycles == 5 and outer.cycles == 15


def test_summary_rows_and_utilization(core):
    trace = ExecutionTrace(core)
    rng = np.random.default_rng(1)
    with trace.phase("gemm"):
        lac_gemm(core, rng.random((8, 8)), rng.random((8, 8)), rng.random((8, 8)))
    rows = trace.summary_rows()
    assert len(rows) == 1
    assert rows[0]["phase"] == "gemm"
    assert rows[0]["share_pct"] == pytest.approx(100.0)
    assert 0.0 < rows[0]["utilization_pct"] <= 100.0
    util = trace.utilization_by_phase()
    assert 0.0 < util["gemm"] <= 1.0


def test_repeated_phases_accumulate(core):
    trace = ExecutionTrace(core)
    for _ in range(3):
        with trace.phase("tick"):
            core.tick(4)
    assert trace.cycles_by_phase()["tick"] == 12
    assert len(trace.phases("tick")) == 3


def test_phase_name_validation_and_reset(core):
    trace = ExecutionTrace(core)
    with pytest.raises(ValueError):
        with trace.phase(""):
            pass
    with trace.phase("x"):
        core.tick(1)
    trace.reset()
    assert trace.events == []
    assert trace.total_cycles == 0
