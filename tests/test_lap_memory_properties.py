"""Property-based verification of the two-level memory hierarchy.

Hypothesis drives randomly generated tile-access sequences (and whole task
graphs) through :class:`repro.lap.memory.TileResidency`,
:class:`repro.lap.memory.LocalStore` and :class:`repro.lap.memory.MemoryHierarchy`
and checks the invariants the analytical layers above rely on:

* capacity: resident bytes never exceed the level's capacity (beyond the
  transient overflow of a single pinned footprint) at either level;
* conservation: every refill byte is exactly compulsory or spill, total
  compulsory traffic equals the distinct footprint brought on chip, and
  writebacks never exceed the bytes ever marked dirty;
* LRU: the victim of a capacity eviction is always the least recently
  used non-pinned tile;
* monotonicity: for a fixed dispatch order, growing either level's
  capacity never increases off-chip spill traffic.

Each invariant runs 200+ random examples (see ``EXAMPLES``), as the
acceptance criteria of the two-level-hierarchy PR require.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.memory import LocalStore, MemoryHierarchy, TileResidency
from repro.lap.runtime import LAPRuntime
from repro.lap.taskgraph import AlgorithmsByBlocks

EXAMPLES = 200

TILE_BYTES = 512

#: One logical tile name drawn from a small universe so that sequences
#: actually revisit tiles (reuse is what the hierarchy models).
tile_names = st.tuples(st.sampled_from("ABC"),
                       st.tuples(st.integers(0, 5), st.integers(0, 5)))

#: One touch: a set of read tiles and a set of written tiles.
touches = st.tuples(st.lists(tile_names, max_size=4),
                    st.lists(tile_names, max_size=2))

#: A short access trace.
traces = st.lists(touches, min_size=1, max_size=30)

#: Capacity in tiles (small enough to force evictions regularly).
capacities = st.integers(1, 8)


def _footprint(reads, writes):
    seen = []
    for access in list(reads) + list(writes):
        if access not in seen:
            seen.append(access)
    return seen


# ----------------------------------------------------- capacity invariants
@settings(max_examples=EXAMPLES, deadline=None)
@given(trace=traces, capacity_tiles=capacities)
def test_shared_resident_bytes_bounded_by_capacity_or_footprint(trace, capacity_tiles):
    """After every touch the shared level holds at most ``capacity`` bytes,
    except when a single pinned footprint transiently overflows it."""
    res = TileResidency(capacity_bytes=capacity_tiles * TILE_BYTES,
                        tile_bytes=TILE_BYTES)
    for reads, writes in trace:
        res.touch(reads, writes)
        footprint_bytes = len(_footprint(reads, writes)) * TILE_BYTES
        assert res.resident_bytes <= max(res.capacity_bytes, footprint_bytes)
        assert res.peak_resident_bytes >= res.resident_bytes


@settings(max_examples=EXAMPLES, deadline=None)
@given(trace=traces, capacity_tiles=capacities)
def test_local_store_resident_bytes_bounded(trace, capacity_tiles):
    """The per-core level obeys the same capacity bound as the shared one."""
    store = LocalStore(capacity_bytes=capacity_tiles * TILE_BYTES,
                       tile_bytes=TILE_BYTES)
    for reads, writes in trace:
        footprint = _footprint(reads, writes)
        store.touch(footprint)
        assert store.resident_bytes <= max(store.capacity_bytes,
                                           len(footprint) * TILE_BYTES)


# ------------------------------------------------- conservation invariants
@settings(max_examples=EXAMPLES, deadline=None)
@given(trace=traces, capacity_tiles=capacities)
def test_refill_splits_exactly_into_compulsory_and_spill(trace, capacity_tiles):
    """Per touch: refill == compulsory + spill, and a tile's first-ever
    fetch is compulsory while every later re-fetch is a spill."""
    res = TileResidency(capacity_bytes=capacity_tiles * TILE_BYTES,
                        tile_bytes=TILE_BYTES)
    ever = set()
    for reads, writes in trace:
        footprint = _footprint(reads, writes)
        missing = [a for a in footprint if not res.is_resident(a)]
        expected_compulsory = sum(TILE_BYTES for a in missing if a not in ever)
        refill, compulsory, spill, _ = res.touch(reads, writes)
        assert refill == compulsory + spill
        assert compulsory == expected_compulsory
        assert refill == len(missing) * TILE_BYTES
        ever.update(footprint)


@settings(max_examples=EXAMPLES, deadline=None)
@given(trace=traces, capacity_tiles=capacities)
def test_traffic_conservation_against_total_footprint(trace, capacity_tiles):
    """Whole-trace conservation: total compulsory bytes equal the distinct
    tiles ever touched, and writebacks (evictions + final flush) never
    exceed the times tiles were marked dirty."""
    res = TileResidency(capacity_bytes=capacity_tiles * TILE_BYTES,
                        tile_bytes=TILE_BYTES)
    total_compulsory = total_writeback = 0.0
    distinct = set()
    dirty_markings = 0
    dirty_now = set()
    for reads, writes in trace:
        _, compulsory, _, writeback = res.touch(reads, writes)
        total_compulsory += compulsory
        total_writeback += writeback
        distinct.update(_footprint(reads, writes))
        for access in writes:
            if access not in dirty_now:
                dirty_markings += 1
            dirty_now.add(access)
        dirty_now = {a for a in dirty_now if res.is_resident(a)} | set(writes)
    total_writeback += res.flush()
    assert total_compulsory == len(distinct) * TILE_BYTES
    assert total_writeback <= dirty_markings * TILE_BYTES


# --------------------------------------------------------------- LRU order
@settings(max_examples=EXAMPLES, deadline=None)
@given(data=st.data())
def test_lru_eviction_order(data):
    """Filling the shared level and touching one more tile evicts exactly
    the least recently used tile of the current footprint's complement."""
    capacity_tiles = data.draw(st.integers(2, 6))
    res = TileResidency(capacity_bytes=capacity_tiles * TILE_BYTES,
                        tile_bytes=TILE_BYTES)
    tiles = [("A", (i, 0)) for i in range(capacity_tiles)]
    order = data.draw(st.permutations(tiles))
    for access in order:
        res.touch([access], [])
    # Refresh a random subset; the LRU victim must then be the first tile
    # (in touch order) that was *not* refreshed.
    refreshed = data.draw(st.lists(st.sampled_from(list(order)), max_size=3))
    recency = list(order)
    for access in refreshed:
        res.touch([access], [])
        recency.remove(access)
        recency.append(access)
    expected_victim = recency[0]
    res.touch([("B", (9, 9))], [])
    assert res.last_evicted == [expected_victim]
    assert not res.is_resident(expected_victim)


# ------------------------------------------------------------ monotonicity
@settings(max_examples=EXAMPLES, deadline=None)
@given(data=st.data())
def test_larger_local_store_never_increases_offchip_spill(data):
    """For the same dispatch order, growing the per-core local store never
    increases off-chip spill bytes (the local level is inclusive and
    write-through, so off-chip traffic is decided by the shared level)."""
    algorithm = data.draw(st.sampled_from(["cholesky", "lu", "qr", "gemm"]))
    n = data.draw(st.sampled_from([16, 24, 32]))
    capacity_tiles = data.draw(st.integers(2, 10))
    small_kb = data.draw(st.sampled_from([0.5, 1.0, 2.0]))
    large_kb = small_kb * data.draw(st.integers(2, 8))
    lib = AlgorithmsByBlocks(tile=8)
    graph = lib.build(algorithm, n)
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4,
                                           onchip_memory_mbytes=1.0))
    cores = data.draw(st.lists(st.integers(0, 1), min_size=len(graph),
                               max_size=len(graph)))

    def spills(local_kb):
        hierarchy = MemoryHierarchy.for_chip(
            lap, tile=8, on_chip_kb=capacity_tiles * 0.5,
            local_store_kb=local_kb)
        for task, core in zip(graph, cores):
            hierarchy.account(task, core)
        hierarchy.finish()
        return hierarchy.spill_bytes, hierarchy.traffic_bytes

    small_spill, small_traffic = spills(small_kb)
    large_spill, large_traffic = spills(large_kb)
    assert large_spill <= small_spill
    assert large_traffic <= small_traffic


@settings(max_examples=EXAMPLES, deadline=None)
@given(data=st.data())
def test_larger_shared_level_never_increases_spill_for_fixed_order(data):
    """For a fixed dispatch order, growing the shared capacity never
    increases spill bytes (LRU stack property over whole-footprint pins)."""
    algorithm = data.draw(st.sampled_from(["cholesky", "lu", "gemm"]))
    n = data.draw(st.sampled_from([16, 24, 32]))
    small_tiles = data.draw(st.integers(2, 8))
    large_tiles = small_tiles + data.draw(st.integers(1, 8))
    graph = AlgorithmsByBlocks(tile=8).build(algorithm, n)

    def spill(capacity_tiles):
        res = TileResidency(capacity_bytes=capacity_tiles * TILE_BYTES,
                            tile_bytes=TILE_BYTES)
        total = 0.0
        for task in graph:
            _, _, spill_bytes, _ = res.touch(task.read_tiles(),
                                             task.write_tiles())
            total += spill_bytes
        return total

    assert spill(large_tiles) <= spill(small_tiles)


# ------------------------------------------- two-level runtime invariants
@settings(max_examples=EXAMPLES, deadline=None)
@given(data=st.data())
def test_two_level_runtime_conserves_offchip_traffic_split(data):
    """End to end through the runtime: traffic always splits exactly into
    compulsory + spill + writeback, the local split covers every locally
    touched byte, and the local level never exceeds its budget."""
    algorithm = data.draw(st.sampled_from(["cholesky", "qr"]))
    policy = data.draw(st.sampled_from(["greedy", "memory_aware", "affinity"]))
    local_kb = data.draw(st.sampled_from([1.0, 2.0, 4.0]))
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4,
                                           onchip_memory_mbytes=1.0))
    runtime = LAPRuntime(lap, 8, policy=policy, timing="memoized",
                         on_chip_kb=6.0, local_store_kb=local_kb)
    stats = runtime.run_workload(algorithm, 32, np.random.default_rng(0),
                                 verify=False)
    assert stats["offchip_traffic_bytes"] == (stats["compulsory_bytes"]
                                              + stats["spill_bytes"]
                                              + stats["writeback_bytes"])
    hierarchy = runtime.last_memory
    touched = (stats["local_hit_bytes"] + stats["shared_to_local_bytes"]
               + stats["c2c_bytes"])
    footprint_bytes = sum(
        len(_footprint(t.read_tiles(), t.write_tiles()))
        * hierarchy.residency.tile_bytes
        for t in AlgorithmsByBlocks(8).build(algorithm, 32))
    assert touched == footprint_bytes
    assert 0.0 <= stats["local_hit_rate"] <= 1.0
    for store in hierarchy.local_stores:
        assert store.resident_bytes <= max(store.capacity_bytes,
                                           store.peak_resident_bytes)


# ------------------------------------- SoA fast path vs OrderedDict oracle
@settings(max_examples=EXAMPLES, deadline=None)
@given(trace=traces, capacity_tiles=capacities)
def test_fast_residency_matches_ordereddict_oracle(trace, capacity_tiles):
    """The clock/stamp SoA residency is observationally identical to the
    OrderedDict reference on random access streams: per-touch traffic
    tuples, eviction victims *in order*, membership, version counter,
    resident/peak bytes, and the final flush."""
    from repro.lap.fastpath import FastTileResidency

    ref = TileResidency(capacity_bytes=capacity_tiles * TILE_BYTES,
                        tile_bytes=TILE_BYTES)
    fast = FastTileResidency(capacity_bytes=capacity_tiles * TILE_BYTES,
                             tile_bytes=TILE_BYTES)
    universe = set()
    for reads, writes in trace:
        universe.update(reads + writes)
        assert fast.touch(reads, writes) == ref.touch(reads, writes)
        assert fast.last_evicted == ref.last_evicted
        assert fast.resident_bytes == ref.resident_bytes
        assert fast.peak_resident_bytes == ref.peak_resident_bytes
        assert fast.version == ref.version
        for name in universe:
            assert fast.is_resident(name) == ref.is_resident(name), name
        probe = sorted(universe)[:6]
        assert fast.missing_bytes(probe) == ref.missing_bytes(probe)
    assert fast.flush() == ref.flush()
    assert fast.last_evicted == ref.last_evicted
    assert fast.resident_bytes == ref.resident_bytes == 0


@settings(max_examples=EXAMPLES, deadline=None)
@given(trace=traces, capacity_tiles=capacities, data=st.data())
def test_fast_local_store_matches_ordereddict_oracle(trace, capacity_tiles,
                                                     data):
    """FastLocalStore mirrors LocalStore under random touch/invalidate
    interleavings (fill bytes, membership, footprint queries, peak)."""
    from repro.lap.fastpath import FastLocalStore

    ref = LocalStore(capacity_bytes=capacity_tiles * TILE_BYTES,
                     tile_bytes=TILE_BYTES)
    fast = FastLocalStore(capacity_bytes=capacity_tiles * TILE_BYTES,
                          tile_bytes=TILE_BYTES)
    universe = set()
    for reads, writes in trace:
        accesses = reads + writes
        universe.update(accesses)
        assert fast.touch(accesses) == ref.touch(accesses)
        if universe and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(sorted(universe)))
            ref.invalidate(victim)
            fast.invalidate(victim)
        assert fast.resident_bytes == ref.resident_bytes
        assert fast.peak_resident_bytes == ref.peak_resident_bytes
        for name in universe:
            assert fast.is_resident(name) == ref.is_resident(name), name
        probe = sorted(universe)[:6]
        assert fast.missing_bytes(probe) == ref.missing_bytes(probe)
        assert (fast.resident_footprint_bytes(probe)
                == ref.resident_footprint_bytes(probe))


# ------------------------------------------------ schedule-replay costing
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_replayed_rows_equal_resimulated_rows(data):
    """Any delta point the replay layer serves from a recorded schedule is
    byte-identical to re-simulating that point from scratch."""
    from repro.engine.runners import get_runner

    runner = get_runner("lap_runtime")
    base = {"algorithm": data.draw(st.sampled_from(["cholesky", "lu"])),
            "n": data.draw(st.sampled_from([24, 32])),
            "tile": 8, "num_cores": 2, "nr": 4, "seed": 0,
            "timing": "memoized", "verify": False,
            "fast": data.draw(st.booleans())}
    if data.draw(st.booleans()):
        base["on_chip_kb"] = data.draw(st.sampled_from([4.0, 6.0]))
    runner(dict(base))  # record (or refresh) the schedule trace
    delta = dict(base)
    delta["bandwidth_gbs"] = data.draw(st.sampled_from([8.0, 32.0, 128.0]))
    if data.draw(st.booleans()):
        delta["stall_overlap"] = data.draw(st.sampled_from([0.0, 0.5, 1.0]))
    replayed = runner(dict(delta))
    resimulated = runner({**delta, "replay": "off"})
    assert replayed == resimulated
