"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


def test_experiments_list(capsys):
    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "table_3_1" in out
    assert "fig_4_16" in out


def test_experiments_single_table(capsys):
    assert main(["experiments", "table_5_1"]) == 0
    out = capsys.readouterr().out
    assert "== table_5_1 ==" in out
    assert "gemm" in out


def test_experiments_unknown_id(capsys):
    assert main(["experiments", "table_nonexistent"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment ids" in err


def test_simulate_gemm(capsys):
    assert main(["simulate", "gemm", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "kernel        : gemm" in out
    assert "utilisation" in out


def test_simulate_cholesky_and_fft(capsys):
    assert main(["simulate", "cholesky", "--size", "8"]) == 0
    assert main(["simulate", "fft", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "cholesky" in out and "fft" in out


def test_simulate_rejects_misaligned_size(capsys):
    assert main(["simulate", "gemm", "--size", "10"]) == 2
    assert "multiple of nr" in capsys.readouterr().err


def test_design_summary(capsys):
    assert main(["design", "--cores", "8", "--frequency", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "gflops_per_w" in out
    assert "area_mm2" in out


def test_simulate_fft_reports_rounded_points(capsys):
    assert main(["simulate", "fft", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "64-point" in out
    assert "rounded from --size 8" in out


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["simulate", "trsm", "--size", "12", "--nr", "4"])
    assert args.kernel == "trsm"
    assert args.size == 12
    with pytest.raises(SystemExit):
        parser.parse_args(["simulate", "not-a-kernel"])


def test_experiments_json_to_file(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["experiments", "table_4_1", "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert "table_4_1" in payload["experiments"]
    assert payload["experiments"]["table_4_1"]


def test_design_json_to_stdout(capsys):
    assert main(["design", "--cores", "8", "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["design"]["cores"] == 8
    assert payload["design"]["gflops_per_w"] > 0


def test_sweep_design_grid_reports_frontier(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["sweep", "--runner", "design", "--grid", "cores=4,8,16,24",
            "--grid", "nr=2,4,8", "--grid", "frequency_ghz=0.5,1.0",
            "--cache-dir", cache]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "24 jobs: 24 executed, 0 cached" in out
    assert "Pareto frontier" in out
    assert "best per metric:" in out

    # Acceptance: the second, warm-cache run executes zero jobs.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 executed, 24 cached" in out


def test_sweep_json_output(tmp_path, capsys):
    argv = ["sweep", "--runner", "design", "--grid", "cores=4,8",
            "--no-cache", "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["jobs"] == 2
    assert len(payload["rows"]) == 2
    assert payload["objectives"] == ["gflops", "gflops_per_w", "gflops_per_mm2"]
    assert payload["frontier"]


def test_sweep_zip_and_set(tmp_path, capsys):
    argv = ["sweep", "--runner", "design", "--set", "nr=4",
            "--zip", "cores=4,8", "--zip", "frequency_ghz=1.0,1.4",
            "--no-cache", "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["jobs"] == 2
    freqs = [row["frequency_ghz"] for row in payload["rows"]]
    assert freqs == [1.0, 1.4]


def test_sweep_simulate_runner(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["sweep", "--runner", "simulate", "--grid", "kernel=gemm,syrk",
            "--grid", "size=8,16", "--cache-dir", cache, "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 4
    assert {row["kernel"] for row in payload["rows"]} == {"gemm", "syrk"}
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 0 and payload["cached"] == 4


def test_sweep_rejects_empty_spec(capsys):
    assert main(["sweep", "--runner", "design"]) == 2
    assert "no jobs" in capsys.readouterr().err


def test_sweep_rejects_malformed_axis(capsys):
    assert main(["sweep", "--grid", "cores"]) == 2
    assert "--grid expects" in capsys.readouterr().err


def test_simulate_fft_accepts_unaligned_size(capsys):
    # fft derives a radix-4 point count, so the nr-alignment rule of the
    # matrix kernels does not apply (matches the engine's simulate runner).
    assert main(["simulate", "fft", "--size", "10"]) == 0
    assert "64-point" in capsys.readouterr().out


def test_sweep_rejects_duplicate_set(capsys):
    assert main(["sweep", "--set", "nr=2", "--set", "nr=8",
                 "--grid", "cores=4", "--no-cache"]) == 2
    assert "already defined" in capsys.readouterr().err


def test_json_to_unwritable_path_fails_cleanly(capsys):
    assert main(["design", "--json", "/proc/nope/x.json"]) == 2
    assert "cannot write JSON" in capsys.readouterr().err


def test_simulate_rejects_nonpositive_size(capsys):
    assert main(["simulate", "fft", "--size", "0"]) == 2
    assert "size must be positive" in capsys.readouterr().err


def test_sweep_rejects_nonfinite_axis_value(capsys):
    assert main(["sweep", "--runner", "design", "--grid", "cores=inf",
                 "--no-cache"]) == 2
    assert "sweep failed" in capsys.readouterr().err


def test_sweep_best_per_metric_lists_float_axes(capsys):
    assert main(["sweep", "--runner", "design", "--grid", "cores=4,8",
                 "--grid", "frequency_ghz=0.5,1.0", "--no-cache"]) == 0
    out = capsys.readouterr().out
    best_lines = out.split("best per metric:")[1]
    assert "frequency_ghz=" in best_lines


def test_sweep_rejects_duplicate_axis_cleanly(capsys):
    assert main(["sweep", "--grid", "cores=4,8", "--grid", "cores=16",
                 "--no-cache"]) == 2
    assert "already defined" in capsys.readouterr().err


def test_sweep_rejects_duplicate_zip_axis(capsys):
    assert main(["sweep", "--zip", "cores=4,8", "--zip", "cores=16,32",
                 "--no-cache"]) == 2
    assert "already defined" in capsys.readouterr().err


def test_sweep_unusable_cache_dir_degrades_to_no_cache(tmp_path, capsys):
    blocker = tmp_path / "cachefile"
    blocker.write_text("not a directory")
    assert main(["sweep", "--runner", "design", "--grid", "cores=4,8",
                 "--cache-dir", str(blocker)]) == 0
    captured = capsys.readouterr()
    assert "cache directory unusable" in captured.err
    assert "2 executed" in captured.out


def test_sweep_rejects_zip_length_mismatch_cleanly(capsys):
    assert main(["sweep", "--zip", "cores=4,8", "--zip", "nr=2",
                 "--no-cache"]) == 2
    assert "equal lengths" in capsys.readouterr().err


def test_sweep_warns_on_unknown_parameter(capsys):
    assert main(["sweep", "--runner", "design", "--grid", "coresz=4,8",
                 "--no-cache"]) == 0
    err = capsys.readouterr().err
    assert "ignores parameter(s) coresz" in err


def test_sweep_rejects_unknown_objective(capsys):
    argv = ["sweep", "--runner", "design", "--grid", "cores=4,8",
            "--no-cache", "--objectives", "not_a_column"]
    assert main(argv) == 2
    assert "sweep failed" in capsys.readouterr().err


def test_sweep_lists_new_runner_families():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--runner", "lap_runtime",
                              "--grid", "n=16"])
    assert args.runner == "lap_runtime"
    args = parser.parse_args(["sweep", "--runner", "blocked_fact",
                              "--grid", "method=lu"])
    assert args.runner == "blocked_fact"
    for runner in ("chip_gemm_onchip", "blas", "fact_kernel"):
        assert parser.parse_args(["sweep", "--runner", runner,
                                  "--grid", "n=512"]).runner == runner


def test_sweep_lap_runtime_runner_end_to_end(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["sweep", "--runner", "lap_runtime", "--set", "algorithm=gemm",
            "--set", "tile=8", "--set", "num_cores=2", "--grid", "n=16,24",
            "--cache-dir", cache, "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 2
    assert all(row["residual"] < 1e-9 for row in payload["rows"])
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 0 and payload["cached"] == 2


def test_sweep_policy_comparison_end_to_end(tmp_path, capsys):
    """Acceptance: the policy-comparison sweep runs through the cached,
    parallel engine from the CLI (policies x cores, LU/QR workloads)."""
    cache = str(tmp_path / "cache")
    argv = ["sweep", "--runner", "lap_runtime",
            "--grid", "policy=greedy,critical_path,locality",
            "--grid", "num_cores=1,2", "--grid", "algorithm=lu,qr",
            "--set", "n=16", "--set", "tile=8", "--set", "timing=memoized",
            "--cache-dir", cache, "--mode", "process", "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 12
    assert {row["policy"] for row in payload["rows"]} == {
        "greedy", "critical_path", "locality"}
    assert all(row["residual"] < 1e-9 for row in payload["rows"])
    # Warm-cache rerun: every policy point comes back from the cache.
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 0 and payload["cached"] == 12


def test_experiments_lists_runtime_policy_sweep(capsys):
    assert main(["experiments", "--list"]) == 0
    assert "runtime_policies" in capsys.readouterr().out


def test_sweep_blocked_fact_runner_end_to_end(capsys):
    argv = ["sweep", "--runner", "blocked_fact", "--grid",
            "method=cholesky,lu,qr", "--set", "n=8", "--no-cache", "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert {row["method"] for row in payload["rows"]} == {"cholesky", "lu", "qr"}
    assert all(row["residual"] < 1e-8 for row in payload["rows"])


# ------------------------------------------------------------------- cache
def _seed_cache(tmp_path, capsys, jobs=4):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "--runner", "design", "--grid",
                 "cores=" + ",".join(str(4 * (i + 1)) for i in range(jobs)),
                 "--cache-dir", cache_dir, "--json", os.devnull]) == 0
    capsys.readouterr()  # drain the sweep's output before the cache command
    return cache_dir


def test_cache_stats(tmp_path, capsys):
    cache_dir = _seed_cache(tmp_path, capsys)
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries       : 4" in out
    assert "size_mbytes" in out
    assert "replay        : 0 sidecar entries" in out


def test_cache_stats_json(tmp_path, capsys):
    cache_dir = _seed_cache(tmp_path, capsys)
    assert main(["cache", "stats", "--cache-dir", cache_dir,
                 "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"]["entries"] == 4
    assert payload["cache"]["size_bytes"] > 0


def test_cache_prune_to_entry_budget(tmp_path, capsys):
    cache_dir = _seed_cache(tmp_path, capsys)
    assert main(["cache", "prune", "--cache-dir", cache_dir,
                 "--max-entries", "1"]) == 0
    assert "pruned 3 entries; 1 left" in capsys.readouterr().out


def test_cache_prune_and_clear_honor_json(tmp_path, capsys):
    cache_dir = _seed_cache(tmp_path, capsys)
    assert main(["cache", "prune", "--cache-dir", cache_dir,
                 "--max-entries", "2", "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"]["action"] == "prune"
    assert payload["cache"]["removed"] == 2
    assert payload["cache"]["entries"] == 2
    assert main(["cache", "clear", "--cache-dir", cache_dir,
                 "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"] == {"action": "clear", "removed": 2,
                                "directory": cache_dir}


def test_cache_prune_to_size_budget(tmp_path, capsys):
    cache_dir = _seed_cache(tmp_path, capsys)
    assert main(["cache", "prune", "--cache-dir", cache_dir,
                 "--max-mb", "0.0001"]) == 0
    out = capsys.readouterr().out
    assert "pruned" in out
    assert main(["cache", "stats", "--cache-dir", cache_dir, "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"]["size_bytes"] <= 0.0001 * 2 ** 20


def test_cache_prune_without_limits_fails_cleanly(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
    cache_dir = _seed_cache(tmp_path, capsys)
    assert main(["cache", "prune", "--cache-dir", cache_dir]) == 2
    assert "needs a limit" in capsys.readouterr().err


def test_cache_clear(tmp_path, capsys):
    cache_dir = _seed_cache(tmp_path, capsys)
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 4 cache entries" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir, "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"]["entries"] == 0


def test_cache_clear_missing_directory_fails_cleanly(tmp_path, capsys):
    assert main(["cache", "clear", "--cache-dir",
                 str(tmp_path / "nope")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cache_stats_missing_directory_does_not_create_it(tmp_path, capsys):
    target = tmp_path / "nope"
    assert main(["cache", "stats", "--cache-dir", str(target)]) == 0
    assert "does not exist yet" in capsys.readouterr().out
    assert not target.exists()
    assert main(["cache", "stats", "--cache-dir", str(target),
                 "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"] == {"directory": str(target), "exists": False,
                                "entries": 0, "size_bytes": 0}
    assert not target.exists()


# --------------------------------------------------------- trace / report
def _trace(tmp_path, capsys, *extra):
    out = str(tmp_path / "t.trace.json")
    assert main(["trace", "--workload", "cholesky", "--n", "64",
                 "--tile", "16", "--cores", "2", "--out", out, *extra]) == 0
    return out, capsys.readouterr().out


def test_trace_writes_valid_chrome_trace(tmp_path, capsys):
    from repro.obs import validate_chrome_trace

    out, printed = _trace(tmp_path, capsys)
    assert "makespan" in printed and "TOTAL" in printed
    assert "compute%" in printed and "idle%" in printed
    with open(out) as handle:
        payload = json.load(handle)
    events = validate_chrome_trace(payload)
    tasks = [e for e in events if e.get("cat") == "task"]
    assert tasks and {e["tid"] for e in tasks} == {0, 1}
    assert all("compute_cycles" in e["args"] for e in tasks)
    meta = payload["metadata"]
    assert meta["time_unit"] == "cycles"
    assert meta["workload"]["workload"] == "cholesky"
    attribution = meta["cycle_attribution"]
    assert attribution["num_cores"] == 2
    assert sum(attribution["totals"].values()) == pytest.approx(
        attribution["total_cycles"], rel=1e-6)


def test_trace_with_memory_pressure_reports_stalls(tmp_path, capsys):
    out, printed = _trace(tmp_path, capsys, "--on-chip-kb", "8",
                          "--bandwidth-gbs", "8", "--local-store-kb", "2",
                          "--stall-overlap", "0.5")
    with open(out) as handle:
        totals = json.load(handle)["metadata"]["cycle_attribution"]["totals"]
    assert totals["spill_stall"] > 0 and totals["transfer"] > 0


def test_trace_fast_falls_back_to_instrumented_loop(tmp_path, capsys):
    """--fast under tracing is cleanly rejected: the reference loop runs
    (spans need its instrumentation), a note says so, and the exported trace
    equals the one a plain run writes -- schedules are byte-identical."""
    out = str(tmp_path / "fast.trace.json")
    assert main(["trace", "--workload", "cholesky", "--n", "64",
                 "--tile", "16", "--cores", "2", "--out", out, "--fast"]) == 0
    captured = capsys.readouterr()
    assert "reference scheduler loop" in captured.err
    assert "byte-identical" in captured.err
    with open(out) as handle:
        fast_payload = json.load(handle)
    plain = str(tmp_path / "plain.trace.json")
    assert main(["trace", "--workload", "cholesky", "--n", "64",
                 "--tile", "16", "--cores", "2", "--out", plain]) == 0
    capsys.readouterr()
    with open(plain) as handle:
        plain_payload = json.load(handle)
    assert (fast_payload["metadata"]["cycle_attribution"]
            == plain_payload["metadata"]["cycle_attribution"])
    assert fast_payload["traceEvents"] == plain_payload["traceEvents"]


def test_trace_rejects_bad_geometry(tmp_path, capsys):
    assert main(["trace", "--workload", "cholesky", "--n", "60",
                 "--tile", "16", "--out", str(tmp_path / "x.json")]) == 2
    assert "trace failed" in capsys.readouterr().err


def test_report_from_trace(tmp_path, capsys):
    out, _ = _trace(tmp_path, capsys)
    assert main(["report", "--trace", out]) == 0
    printed = capsys.readouterr().out
    assert "cycle attribution" in printed and "TOTAL" in printed
    assert "workload=cholesky" in printed


def test_report_from_manifest_and_json(tmp_path, capsys):
    rows = str(tmp_path / "rows.json")
    assert main(["sweep", "--runner", "design", "--grid", "cores=4,8",
                 "--cache-dir", str(tmp_path / "cache"), "--json", rows]) == 0
    capsys.readouterr()
    manifest = rows + ".manifest.json"
    assert os.path.exists(manifest)
    assert main(["report", "--manifest", manifest]) == 0
    printed = capsys.readouterr().out
    assert "sweep telemetry [design]" in printed
    assert "2 jobs" in printed and "hit rate" in printed
    assert main(["report", "--trace", _trace(tmp_path, capsys)[0],
                 "--manifest", manifest, "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["manifest"]["schema"] == "repro.obs.run_manifest/v1"
    assert payload["trace"]["cycle_attribution"]["num_cores"] == 2


def test_sweep_stream_live_progress_and_manifest(tmp_path, capsys):
    rows = str(tmp_path / "rows.json")
    argv = ["sweep", "--runner", "design", "--grid", "cores=4,8,16",
            "--grid", "nr=2,4", "--cache-dir", str(tmp_path / "cache"),
            "--stream", "--json", rows]
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "6/6 rows" in captured.err
    assert "% cached" in captured.err
    assert "frontier" in captured.err
    manifest = rows + ".manifest.json"
    with open(manifest) as handle:
        streaming = json.load(handle)["streaming"]
    assert streaming["first_row_s"] is not None
    assert streaming["last_row_s"] >= streaming["first_row_s"]

    # The warm streaming re-run reports a 100% hit-rate live.
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "100% cached" in captured.err
    with open(rows) as handle:
        payload = json.load(handle)
    assert payload["executed"] == 0 and payload["cached"] == 6

    # `repro report` surfaces the recorded streaming latencies.
    assert main(["report", "--manifest", manifest]) == 0
    assert "streaming     : first row" in capsys.readouterr().out


def test_sweep_stream_non_tty_emits_newline_updates(tmp_path, capsys):
    """Captured (non-TTY) stderr gets plain newline-delimited progress --
    no carriage-return animation -- and the final state always renders,
    even when 10 Hz throttling swallows intermediate redraws."""
    assert main(["sweep", "--runner", "design", "--grid", "cores=4,8,16",
                 "--no-cache", "--stream", "--json", os.devnull]) == 0
    err = capsys.readouterr().err
    assert "\r" not in err
    lines = [line for line in err.splitlines() if "rows" in line]
    assert lines and lines[-1].startswith("3/3 rows")


def test_sweep_stream_rows_match_batch(tmp_path, capsys):
    batch = ["sweep", "--runner", "design", "--grid", "cores=4,8",
             "--no-cache", "--json", "-"]
    assert main(batch) == 0
    expected = json.loads(capsys.readouterr().out)["rows"]
    assert main(batch + ["--stream"]) == 0
    assert json.loads(capsys.readouterr().out)["rows"] == expected


def test_sweep_explicit_manifest_path(tmp_path, capsys):
    target = str(tmp_path / "custom.manifest.json")
    assert main(["sweep", "--runner", "design", "--grid", "cores=4,8",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--manifest", target, "--json", os.devnull]) == 0
    capsys.readouterr()
    with open(target) as handle:
        manifest = json.load(handle)
    assert manifest["jobs"] == 2 and manifest["runner"] == "design"


def test_report_requires_an_input(capsys):
    assert main(["report"]) == 2
    assert "nothing to report" in capsys.readouterr().err


def test_report_missing_trace_fails_cleanly(tmp_path, capsys):
    assert main(["report", "--trace", str(tmp_path / "nope.json")]) == 2
    assert "cannot read attribution" in capsys.readouterr().err


def test_cache_stats_reports_lifetime_counters(tmp_path, capsys):
    cache_dir = _seed_cache(tmp_path, capsys)
    _seed_cache(tmp_path, capsys)  # warm second run: all hits
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "hits          : 4 (lifetime)" in out
    assert "misses        : 4 (lifetime)" in out
    assert "hit_rate      : 50.0% (lifetime)" in out


# ------------------------------------------------------------------- serve
def test_sweep_submit_requires_server(capsys):
    assert main(["sweep", "--runner", "design", "--set", "nr=4",
                 "--grid", "cores=2,4", "--submit"]) == 2
    assert "--submit needs --server" in capsys.readouterr().err


def test_sweep_server_without_local_tier_warns_and_runs(capsys):
    assert main(["sweep", "--runner", "design", "--set", "nr=4",
                 "--grid", "cores=2,4", "--mode", "serial", "--no-cache",
                 "--server", "http://127.0.0.1:1"]) == 0
    captured = capsys.readouterr()
    assert "ignoring --server" in captured.err
    assert "2 jobs" in captured.out


def test_serve_rejects_unusable_cache_dir(capsys):
    assert main(["serve", "--cache-dir", "/proc/nope/x"]) == 2
    assert "unusable" in capsys.readouterr().err


def test_sweep_against_live_server_deduplicates(tmp_path, capsys):
    from repro.serve import ServeDaemon

    daemon = ServeDaemon(tmp_path / "server", quiet=True).start()
    try:
        base = ["sweep", "--runner", "design", "--set", "nr=4",
                "--grid", "cores=2,4", "--mode", "serial",
                "--server", daemon.url, "--json", "-"]
        assert main(base + ["--cache-dir", str(tmp_path / "a")]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["executed"] == 2

        # A second client with an empty local cache resolves everything
        # through the shared server tier.
        assert main(base + ["--cache-dir", str(tmp_path / "b")]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["executed"] == 0
        assert second["cached"] == 2
        assert json.dumps(second["rows"]) == json.dumps(first["rows"])

        # --submit runs the sweep on the daemon itself.
        assert main(["sweep", "--runner", "design", "--set", "nr=4",
                     "--grid", "cores=2,4", "--server", daemon.url,
                     "--submit", "--json", "-"]) == 0
        submitted = json.loads(capsys.readouterr().out)
        assert submitted["cached"] == 2
        assert json.dumps(submitted["rows"]) == json.dumps(first["rows"])
    finally:
        daemon.stop()


def test_sweep_submit_against_dead_server_fails_cleanly(tmp_path, capsys):
    assert main(["sweep", "--runner", "design", "--set", "nr=4",
                 "--grid", "cores=2,4", "--server", "http://127.0.0.1:1",
                 "--submit"]) == 2
    err = capsys.readouterr().err
    assert "sweep submission failed" in err
    assert "without --submit" in err
