"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_experiments_list(capsys):
    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "table_3_1" in out
    assert "fig_4_16" in out


def test_experiments_single_table(capsys):
    assert main(["experiments", "table_5_1"]) == 0
    out = capsys.readouterr().out
    assert "== table_5_1 ==" in out
    assert "gemm" in out


def test_experiments_unknown_id(capsys):
    assert main(["experiments", "table_nonexistent"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment ids" in err


def test_simulate_gemm(capsys):
    assert main(["simulate", "gemm", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "kernel        : gemm" in out
    assert "utilisation" in out


def test_simulate_cholesky_and_fft(capsys):
    assert main(["simulate", "cholesky", "--size", "8"]) == 0
    assert main(["simulate", "fft", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "cholesky" in out and "fft" in out


def test_simulate_rejects_misaligned_size(capsys):
    assert main(["simulate", "gemm", "--size", "10"]) == 2
    assert "multiple of nr" in capsys.readouterr().err


def test_design_summary(capsys):
    assert main(["design", "--cores", "8", "--frequency", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "gflops_per_w" in out
    assert "area_mm2" in out


def test_simulate_fft_reports_rounded_points(capsys):
    assert main(["simulate", "fft", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "64-point" in out
    assert "rounded from --size 8" in out


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["simulate", "trsm", "--size", "12", "--nr", "4"])
    assert args.kernel == "trsm"
    assert args.size == 12
    with pytest.raises(SystemExit):
        parser.parse_args(["simulate", "not-a-kernel"])


def test_experiments_json_to_file(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["experiments", "table_4_1", "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert "table_4_1" in payload["experiments"]
    assert payload["experiments"]["table_4_1"]


def test_design_json_to_stdout(capsys):
    assert main(["design", "--cores", "8", "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["design"]["cores"] == 8
    assert payload["design"]["gflops_per_w"] > 0


def test_sweep_design_grid_reports_frontier(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["sweep", "--runner", "design", "--grid", "cores=4,8,16,24",
            "--grid", "nr=2,4,8", "--grid", "frequency_ghz=0.5,1.0",
            "--cache-dir", cache]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "24 jobs: 24 executed, 0 cached" in out
    assert "Pareto frontier" in out
    assert "best per metric:" in out

    # Acceptance: the second, warm-cache run executes zero jobs.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 executed, 24 cached" in out


def test_sweep_json_output(tmp_path, capsys):
    argv = ["sweep", "--runner", "design", "--grid", "cores=4,8",
            "--no-cache", "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["jobs"] == 2
    assert len(payload["rows"]) == 2
    assert payload["objectives"] == ["gflops", "gflops_per_w", "gflops_per_mm2"]
    assert payload["frontier"]


def test_sweep_zip_and_set(tmp_path, capsys):
    argv = ["sweep", "--runner", "design", "--set", "nr=4",
            "--zip", "cores=4,8", "--zip", "frequency_ghz=1.0,1.4",
            "--no-cache", "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["jobs"] == 2
    freqs = [row["frequency_ghz"] for row in payload["rows"]]
    assert freqs == [1.0, 1.4]


def test_sweep_simulate_runner(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    argv = ["sweep", "--runner", "simulate", "--grid", "kernel=gemm,syrk",
            "--grid", "size=8,16", "--cache-dir", cache, "--json", "-"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 4
    assert {row["kernel"] for row in payload["rows"]} == {"gemm", "syrk"}
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executed"] == 0 and payload["cached"] == 4


def test_sweep_rejects_empty_spec(capsys):
    assert main(["sweep", "--runner", "design"]) == 2
    assert "no jobs" in capsys.readouterr().err


def test_sweep_rejects_malformed_axis(capsys):
    assert main(["sweep", "--grid", "cores"]) == 2
    assert "--grid expects" in capsys.readouterr().err


def test_simulate_fft_accepts_unaligned_size(capsys):
    # fft derives a radix-4 point count, so the nr-alignment rule of the
    # matrix kernels does not apply (matches the engine's simulate runner).
    assert main(["simulate", "fft", "--size", "10"]) == 0
    assert "64-point" in capsys.readouterr().out


def test_sweep_rejects_duplicate_set(capsys):
    assert main(["sweep", "--set", "nr=2", "--set", "nr=8",
                 "--grid", "cores=4", "--no-cache"]) == 2
    assert "already defined" in capsys.readouterr().err


def test_json_to_unwritable_path_fails_cleanly(capsys):
    assert main(["design", "--json", "/proc/nope/x.json"]) == 2
    assert "cannot write JSON" in capsys.readouterr().err


def test_simulate_rejects_nonpositive_size(capsys):
    assert main(["simulate", "fft", "--size", "0"]) == 2
    assert "size must be positive" in capsys.readouterr().err


def test_sweep_rejects_nonfinite_axis_value(capsys):
    assert main(["sweep", "--runner", "design", "--grid", "cores=inf",
                 "--no-cache"]) == 2
    assert "sweep failed" in capsys.readouterr().err


def test_sweep_best_per_metric_lists_float_axes(capsys):
    assert main(["sweep", "--runner", "design", "--grid", "cores=4,8",
                 "--grid", "frequency_ghz=0.5,1.0", "--no-cache"]) == 0
    out = capsys.readouterr().out
    best_lines = out.split("best per metric:")[1]
    assert "frequency_ghz=" in best_lines


def test_sweep_rejects_duplicate_axis_cleanly(capsys):
    assert main(["sweep", "--grid", "cores=4,8", "--grid", "cores=16",
                 "--no-cache"]) == 2
    assert "already defined" in capsys.readouterr().err


def test_sweep_rejects_duplicate_zip_axis(capsys):
    assert main(["sweep", "--zip", "cores=4,8", "--zip", "cores=16,32",
                 "--no-cache"]) == 2
    assert "already defined" in capsys.readouterr().err


def test_sweep_unusable_cache_dir_degrades_to_no_cache(tmp_path, capsys):
    blocker = tmp_path / "cachefile"
    blocker.write_text("not a directory")
    assert main(["sweep", "--runner", "design", "--grid", "cores=4,8",
                 "--cache-dir", str(blocker)]) == 0
    captured = capsys.readouterr()
    assert "cache directory unusable" in captured.err
    assert "2 executed" in captured.out


def test_sweep_rejects_zip_length_mismatch_cleanly(capsys):
    assert main(["sweep", "--zip", "cores=4,8", "--zip", "nr=2",
                 "--no-cache"]) == 2
    assert "equal lengths" in capsys.readouterr().err


def test_sweep_warns_on_unknown_parameter(capsys):
    assert main(["sweep", "--runner", "design", "--grid", "coresz=4,8",
                 "--no-cache"]) == 0
    err = capsys.readouterr().err
    assert "ignores parameter(s) coresz" in err


def test_sweep_rejects_unknown_objective(capsys):
    argv = ["sweep", "--runner", "design", "--grid", "cores=4,8",
            "--no-cache", "--objectives", "not_a_column"]
    assert main(argv) == 2
    assert "sweep failed" in capsys.readouterr().err
