"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_experiments_list(capsys):
    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "table_3_1" in out
    assert "fig_4_16" in out


def test_experiments_single_table(capsys):
    assert main(["experiments", "table_5_1"]) == 0
    out = capsys.readouterr().out
    assert "== table_5_1 ==" in out
    assert "gemm" in out


def test_experiments_unknown_id(capsys):
    assert main(["experiments", "table_nonexistent"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment ids" in err


def test_simulate_gemm(capsys):
    assert main(["simulate", "gemm", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "kernel        : gemm" in out
    assert "utilisation" in out


def test_simulate_cholesky_and_fft(capsys):
    assert main(["simulate", "cholesky", "--size", "8"]) == 0
    assert main(["simulate", "fft", "--size", "8"]) == 0
    out = capsys.readouterr().out
    assert "cholesky" in out and "fft" in out


def test_simulate_rejects_misaligned_size(capsys):
    assert main(["simulate", "gemm", "--size", "10"]) == 2
    assert "multiple of nr" in capsys.readouterr().err


def test_design_summary(capsys):
    assert main(["design", "--cores", "8", "--frequency", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "gflops_per_w" in out
    assert "area_mm2" in out


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["simulate", "trsm", "--size", "12", "--nr", "4"])
    assert args.kernel == "trsm"
    assert args.size == 12
    with pytest.raises(SystemExit):
        parser.parse_args(["simulate", "not-a-kernel"])
