"""End-to-end integration tests crossing module boundaries.

These exercise the paths a downstream user would follow: simulate a kernel,
validate it numerically, cross-check the measured cycles against the
analytical model, feed the measured activity into the power model, and
regenerate an experiment through the registry.
"""

import numpy as np
import pytest

from repro.experiments.registry import run_experiment
from repro.hw.fpu import FMACUnit, Precision
from repro.hw.sram import pe_store_a, pe_store_b
from repro.kernels.gemm import lac_gemm
from repro.kernels.trsm import lac_trsm
from repro.kernels.cholesky import lac_cholesky
from repro.lac.core import LACConfig, LinearAlgebraCore
from repro.lac.pe import PEConfig
from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.models.core_model import CoreGEMMModel
from repro.models.power import PowerComponent, PowerModel
from repro.reference import ref_cholesky, ref_trsm


def test_simulator_cycles_track_analytical_peak_term():
    """The simulator's steady-state rank-1 cycles equal the model's peak term.

    This is the validation loop of Sec. 1.3.1: analytic formulae vs simulator.
    """
    nr, mc, kc, n = 4, 16, 24, 8
    rng = np.random.default_rng(0)
    core = LinearAlgebraCore()
    a, b, c = rng.random((mc, kc)), rng.random((kc, n)), rng.random((mc, n))
    result = lac_gemm(core, c, a, b)

    model = CoreGEMMModel(nr=nr)
    peak_cycles = model.cycles(mc, kc, n, bandwidth_elements_per_cycle=1e9).peak_cycles
    # Rank-1 updates charged by the simulator (one cycle each).
    rank1_cycles = (mc // nr) * (n // nr) * kc
    assert rank1_cycles == pytest.approx(peak_cycles)
    # Total simulated cycles = rank-1 steps + data movement (load/store of C,
    # distribution of A and B); well within 3x of the peak term at this size.
    assert peak_cycles <= result.cycles <= 3.0 * peak_cycles


def test_measured_activity_feeds_power_model():
    """Counters from a simulated GEMM drive a power breakdown with sane numbers."""
    rng = np.random.default_rng(1)
    core = LinearAlgebraCore(LACConfig(nr=4, pe=PEConfig(store_a_words=4096,
                                                         store_b_words=512)))
    result = lac_gemm(core, rng.random((16, 16)), rng.random((16, 32)), rng.random((32, 16)))
    factors = result.counters.activity_factors(core.num_pes)

    fmac = FMACUnit(precision=Precision.DOUBLE, frequency_ghz=1.0)
    store_a = pe_store_a(16 * 1024)
    store_b = pe_store_b(2 * 1024)
    components = [
        PowerComponent("MAC units", 16 * fmac.dynamic_power_w, factors["mac"]),
        PowerComponent("store A", 16 * store_a.dynamic_power_w(1.0, 1.0), factors["store_a"]),
        PowerComponent("store B", 16 * store_b.dynamic_power_w(1.0, 1.0), factors["store_b"]),
    ]
    seconds = result.cycles / 1e9
    gflops = result.flops / seconds / 1e9
    breakdown = PowerModel(idle_ratio=0.25).breakdown("measured LAC", components, gflops=gflops)
    assert 0.0 < breakdown.total_power_w < 5.0
    assert breakdown.gflops_per_watt > 5.0


def test_trsm_and_cholesky_compose_to_solve_a_linear_system():
    """Factor A = L L^T on the LAC, then solve A X = B with two LAC TRSMs."""
    rng = np.random.default_rng(2)
    n, m = 8, 8
    mmat = rng.random((n, n))
    a = mmat @ mmat.T + n * np.eye(n)
    b = rng.random((n, m))

    chol = lac_cholesky(LinearAlgebraCore(), a)
    l = chol.output
    np.testing.assert_allclose(l, ref_cholesky(a), rtol=1e-9)

    y = lac_trsm(LinearAlgebraCore(), l, b).output           # L y = b
    # Solve L^T x = y by transposing: (L^T) is upper, so solve with the
    # reference for the check and with a flipped system on the LAC.
    x_ref = np.linalg.solve(a, b)
    # L^T x = y  <=>  reversed-order lower system: P L^T P (P x) = P y with P the flip.
    p = np.eye(n)[::-1]
    l_flipped = p @ l.T @ p
    x_flipped = lac_trsm(LinearAlgebraCore(), l_flipped, p @ y).output
    x = p @ x_flipped
    np.testing.assert_allclose(x, x_ref, rtol=1e-8, atol=1e-9)


def test_chip_simulation_agrees_with_chip_model_trend():
    """Functional multi-core GEMM utilisation should not contradict the model."""
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=2, nr=4, onchip_memory_mbytes=1.0))
    rng = np.random.default_rng(3)
    n = 16
    run = lap.run_gemm(rng.random((n, n)), rng.random((n, n)), rng.random((n, n)))
    assert 0.05 < run["utilization"] <= 1.0
    model = lap.model_gemm(1024)
    assert 0.5 < model.utilization <= 1.0


def test_experiment_registry_round_trip_with_report():
    from repro.experiments.report import summarize_experiment
    data = run_experiment("table_4_1")
    text = summarize_experiment("table_4_1", data)
    assert "core" in text and "chip" in text
    assert "bandwidth_words_per_cycle" in text


def test_full_precision_pipeline_single_vs_double():
    """The same workload on SP and DP LAPs: SP is roughly twice as efficient."""
    sp = LinearAlgebraProcessor(LAPConfig(num_cores=4, precision=Precision.SINGLE))
    dp = LinearAlgebraProcessor(LAPConfig(num_cores=4, precision=Precision.DOUBLE))
    sp_eff = sp.power_breakdown(0.9).gflops_per_watt
    dp_eff = dp.power_breakdown(0.9).gflops_per_watt
    assert sp_eff > 1.5 * dp_eff
