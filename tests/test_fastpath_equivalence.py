"""Byte-identical equivalence of the fastpath scheduler against the reference.

The inlined hot loop of :mod:`repro.lap.fastpath` exists purely for speed:
``LAPRuntime(..., fast=True)`` must produce *exactly* the rows the reference
event loop produces -- same stats dict, same :class:`TaskExecution` records
field by field (values and Python types), same cycle attribution, same
schedule trace -- or downstream sweeps silently fork.  This suite pins that
contract:

* the full matrix of all four algorithms-by-blocks workloads x
  {greedy, memory_aware, affinity} x {single-level, two-level} hierarchies
  under constrained capacity (spills, stalls and writebacks exercised);
* the specialized greedy single-level loop (the million-task path) and its
  lazily-built execution records;
* verify=True (numerically exact tiles) and heterogeneous-frequency /
  prefetch-overlap variants that take the generic fast loop;
* the ``lap_runtime`` runner rows against the committed PR-4/PR-5 goldens
  with ``fast=True``, and replayed delta-sweep rows against re-simulation.
"""

import dataclasses
import json
import pathlib

import numpy as np
import pytest

from repro.engine.runners import get_runner
from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.runtime import LAPRuntime
from repro.lap.taskgraph import AlgorithmsByBlocks

TILE = 8
SIZES = {"cholesky": 40, "gemm": 32, "lu": 40, "qr": 32}
POLICIES = ["greedy", "memory_aware", "affinity"]
#: local_store_kb=None is the single-level hierarchy, 1.0 the two-level one.
LEVELS = [None, 1.0]

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "goldens"


def make_runtime(fast, policy="greedy", local_store_kb=None, timing="memoized",
                 on_chip_kb=3.0, bandwidth_gbs=16.0, stall_overlap=0.0,
                 frequencies=None, num_cores=4, memory=True):
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=num_cores, nr=4,
                                           onchip_memory_mbytes=1.0))
    return LAPRuntime(lap, TILE, policy=policy, timing=timing, memory=memory,
                      on_chip_kb=on_chip_kb, bandwidth_gbs=bandwidth_gbs,
                      local_store_kb=local_store_kb,
                      stall_overlap=stall_overlap,
                      core_frequencies_ghz=frequencies, fast=fast)


def make_tiles(nb=6):
    """Operand tile dicts: identity-like blocks keep every kernel exact
    (SPD and diagonally dominant), shared across operands (tasks only read
    shapes under memoized timing after the per-signature warm-up)."""
    block = np.eye(TILE) * TILE
    blocks = {(i, j): block.copy() for i in range(nb) for j in range(nb)}
    return {name: {k: v.copy() for k, v in blocks.items()}
            for name in ("A", "B", "C", "L")}


def assert_stats_identical(ref, fast):
    assert set(ref) == set(fast)
    for key in sorted(ref):
        rv, fv = ref[key], fast[key]
        assert type(rv) is type(fv), f"{key}: {type(rv)} vs {type(fv)}"
        assert rv == fv, f"{key}: {rv!r} != {fv!r}"


def assert_executions_identical(ref_rt, fast_rt):
    ref_rows, fast_rows = ref_rt.executions, fast_rt.executions
    assert len(ref_rows) == len(fast_rows)
    fields = [f.name for f in dataclasses.fields(ref_rows[0])]
    for a, b in zip(ref_rows, fast_rows):
        for name in fields:
            rv, fv = getattr(a, name), getattr(b, name)
            assert type(rv) is type(fv), f"{name}: {type(rv)} vs {type(fv)}"
            assert rv == fv, f"task {a.task_id} {name}: {rv!r} != {fv!r}"


def assert_runs_identical(ref_rt, fast_rt, graph, verify=False):
    ref_stats = ref_rt.execute(graph, make_tiles(), verify=verify)
    fast_stats = fast_rt.execute(graph, make_tiles(), verify=verify)
    assert not ref_rt.last_fast and fast_rt.last_fast
    assert_stats_identical(ref_stats, fast_stats)
    assert_executions_identical(ref_rt, fast_rt)
    ref_att, fast_att = ref_rt.attribution(), fast_rt.attribution()
    assert ref_att.as_dict() == fast_att.as_dict()
    fast_att.check()
    ref_trace, fast_trace = ref_rt.schedule_trace(), fast_rt.schedule_trace()
    assert ref_trace.task_ids == fast_trace.task_ids
    assert ref_trace.cores == fast_trace.cores
    assert ref_trace.starts == fast_trace.starts
    assert ref_trace.ends == fast_trace.ends
    assert ref_trace.total_spill_bytes == fast_trace.total_spill_bytes
    assert ref_trace.total_movement_cycles == fast_trace.total_movement_cycles
    return ref_stats


# ------------------------------------------------- full workload x policy matrix
@pytest.mark.parametrize("algorithm", sorted(SIZES))
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("local_store_kb", LEVELS)
def test_fast_matches_reference(algorithm, policy, local_store_kb):
    graph = AlgorithmsByBlocks(TILE).build(algorithm, SIZES[algorithm])
    ref_rt = make_runtime(False, policy=policy, local_store_kb=local_store_kb)
    fast_rt = make_runtime(True, policy=policy, local_store_kb=local_store_kb)
    stats = assert_runs_identical(ref_rt, fast_rt, graph)
    # The constrained capacity must actually exercise the eviction machinery,
    # otherwise the matrix pins only the trivially-resident regime.
    assert stats["spill_bytes"] > 0


def test_specialized_greedy_loop_and_lazy_rows():
    """Greedy + single-level + memoized + homogeneous takes the specialized
    loop (lazily materialised execution records) and is still identical."""
    graph = AlgorithmsByBlocks(TILE).cholesky_tasks(48)
    ref_rt = make_runtime(False)
    fast_rt = make_runtime(True)
    assert_runs_identical(ref_rt, fast_rt, graph)
    # The specialized loop defers row construction to a builder closure.
    assert fast_rt._exec_build is not None
    fast_rt.executions  # materialise -- covered field-by-field above


def test_verify_true_keeps_tiles_exact_and_identical():
    graph = AlgorithmsByBlocks(TILE).cholesky_tasks(40)
    ref_rt = make_runtime(False, local_store_kb=1.0)
    fast_rt = make_runtime(True, local_store_kb=1.0)
    assert_runs_identical(ref_rt, fast_rt, graph, verify=True)


def test_generic_fast_loop_variants_identical():
    """Heterogeneous clocks / prefetch overlap / disabled memory all route
    through the generic fast loop; each stays byte-identical."""
    graph = AlgorithmsByBlocks(TILE).cholesky_tasks(40)
    for kwargs in ({"frequencies": [1.0, 2.0, 1.0, 2.0]},
                   {"stall_overlap": 0.5, "local_store_kb": 1.0},
                   {"memory": False},
                   {"timing": "functional", "on_chip_kb": None}):
        ref_rt = make_runtime(False, **kwargs)
        fast_rt = make_runtime(True, **kwargs)
        assert_runs_identical(ref_rt, fast_rt, graph)


# ---------------------------------------------------------------- goldens
#: The committed PR-4 golden cases (kept in sync with
#: tests/test_lap_memory.py::GOLDEN_CASES); the fast path must reproduce the
#: golden rows -- not merely match a fresh reference run.
MEMORY_GOLDEN_CASES = [
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False},
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 4.0},
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 4.0,
     "policy": "memory_aware"},
    {"algorithm": "gemm", "n": 32, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 6.0},
    {"algorithm": "lu", "n": 40, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 6.0,
     "policy": "memory_aware"},
    {"algorithm": "qr", "n": 32, "tile": 8, "num_cores": 1, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "bandwidth_gbs": 16.0,
     "on_chip_kb": 4.0},
]


def test_runner_fast_rows_match_memory_goldens():
    """`lap_runtime` rows with fast=True reproduce the committed golden
    sweep (and equal the reference rows exactly, not just to tolerance)."""
    golden = json.loads(
        (GOLDEN_DIR / "runtime" / "lap_runtime_memory.json").read_text())
    runner = get_runner("lap_runtime")
    assert len(golden) == len(MEMORY_GOLDEN_CASES)
    for case, expected in zip(MEMORY_GOLDEN_CASES, golden):
        ref_row = runner({**case, "replay": "off"})
        fast_row = runner({**case, "fast": True, "replay": "off"})
        assert ref_row == fast_row
        assert set(fast_row) == set(expected)
        for key, value in expected.items():
            if isinstance(value, float):
                assert fast_row[key] == pytest.approx(value, rel=1e-6,
                                                      abs=1e-15), key
            else:
                assert fast_row[key] == value, key


def test_runner_policy_golden_rows_survive_fast():
    """The PR-3 policy-comparison golden (makespans per policy/core count)
    is reproduced by the fast path."""
    golden = json.loads((GOLDEN_DIR / "runtime_policies.json").read_text())
    runner = get_runner("lap_runtime")
    for row in golden[:6]:
        fast_row = runner({"algorithm": "cholesky", "n": row["n"],
                           "tile": row["tile"], "num_cores": row["num_cores"],
                           "nr": 4, "seed": 0, "timing": "memoized",
                           "verify": False, "policy": row["policy"],
                           "fast": True, "replay": "off"})
        assert fast_row["makespan_cycles"] == row["makespan_cycles"]
        assert fast_row["tasks_executed"] == row["tasks"]


# ----------------------------------------------------------------- replay
def test_schedule_trace_payload_roundtrip():
    """The sidecar header round-trips everything `exact_for` depends on."""
    import json

    from repro.lap.fastpath import ScheduleTrace

    trace = ScheduleTrace(policy="greedy", timing="memoized",
                          stall_overlap=0.25, effective_bandwidth_gbs=12.5,
                          default_bandwidth_gbs=16.0,
                          total_spill_bytes=4096.0,
                          total_movement_cycles=0.0,
                          task_ids=[1, 2, 3], cores=[0, 1, 0],
                          starts=[0.0, 1.0, 2.0], ends=[1.0, 2.0, 3.0])
    payload = json.loads(json.dumps(trace.to_payload()))  # disk round-trip
    loaded = ScheduleTrace.from_payload(payload)
    assert len(loaded) == len(trace) == 3
    for bandwidth in (None, 12.5, 64.0):
        for overlap in (0.25, 0.75):
            assert (loaded.exact_for(bandwidth, overlap)
                    == trace.exact_for(bandwidth, overlap))
    # None bandwidth (memory accounting disabled) survives the round trip.
    nomem = ScheduleTrace(policy="greedy", timing="functional",
                          stall_overlap=0.0, effective_bandwidth_gbs=None,
                          default_bandwidth_gbs=16.0, total_spill_bytes=0.0,
                          total_movement_cycles=0.0, task_ids=[], cores=[],
                          starts=[], ends=[])
    again = ScheduleTrace.from_payload(
        json.loads(json.dumps(nomem.to_payload())))
    assert again.effective_bandwidth_gbs is None
    assert again.exact_for(32.0, 0.0)


def test_replay_delta_rows_equal_resimulation():
    """A bandwidth/overlap delta point replayed from a recorded schedule is
    byte-identical to re-simulating it, and replay refuses (re-simulates)
    when spills make the delta schedule-visible."""
    from repro.lap.fastpath import REPLAY_STATS

    runner = get_runner("lap_runtime")
    base = {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2,
            "nr": 4, "seed": 11, "timing": "memoized", "verify": False,
            "fast": True}
    # Unconstrained capacity: zero spill traffic, so a bandwidth delta is
    # provably schedule-invariant and must be replayed.
    runner(dict(base))  # records the trace
    before = dict(REPLAY_STATS)
    replayed = runner({**base, "bandwidth_gbs": 64.0})
    assert REPLAY_STATS["replayed"] == before["replayed"] + 1
    resim = runner({**base, "bandwidth_gbs": 64.0, "replay": "off"})
    assert replayed == resim
    # Constrained capacity: spills couple bandwidth to the schedule, so the
    # delta must force a re-simulation (and still agree with replay="off").
    tight = {**base, "seed": 12, "on_chip_kb": 4.0}
    first = runner(dict(tight))
    assert first["spill_bytes"] > 0
    before = dict(REPLAY_STATS)
    forced = runner({**tight, "bandwidth_gbs": 64.0})
    assert REPLAY_STATS["forced"] == before["forced"] + 1
    assert forced == runner({**tight, "bandwidth_gbs": 64.0, "replay": "off"})
