"""Byte-identical equivalence of the fastpath scheduler against the reference.

The inlined hot loop of :mod:`repro.lap.fastpath` exists purely for speed:
``LAPRuntime(..., fast=True)`` must produce *exactly* the rows the reference
event loop produces -- same stats dict, same :class:`TaskExecution` records
field by field (values and Python types), same cycle attribution, same
schedule trace -- or downstream sweeps silently fork.  This suite pins that
contract:

* the full matrix of all four algorithms-by-blocks workloads x all five
  scheduling policies x {single-level, two-level} hierarchies under
  constrained capacity (spills, stalls and writebacks exercised);
* the SoA batch kernels (CSR ``missing_bytes`` / resident-footprint
  scoring) against their scalar oracles on random residency states;
* the specialized greedy single-level loop (the million-task path) and its
  lazily-built execution records;
* verify=True (numerically exact tiles) and heterogeneous-frequency /
  prefetch-overlap variants that take the generic fast loop;
* the ``lap_runtime`` runner rows against the committed PR-4/PR-5 goldens
  with ``fast=True``, and replayed delta-sweep rows against re-simulation.
"""

import dataclasses
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.runners import get_runner
from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.runtime import LAPRuntime
from repro.lap.taskgraph import AlgorithmsByBlocks

TILE = 8
SIZES = {"cholesky": 40, "gemm": 32, "lu": 40, "qr": 32}
POLICIES = ["greedy", "critical_path", "locality", "memory_aware", "affinity"]
#: local_store_kb=None is the single-level hierarchy, 1.0 the two-level one.
LEVELS = [None, 1.0]

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "goldens"


def make_runtime(fast, policy="greedy", local_store_kb=None, timing="memoized",
                 on_chip_kb=3.0, bandwidth_gbs=16.0, stall_overlap=0.0,
                 frequencies=None, num_cores=4, memory=True):
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=num_cores, nr=4,
                                           onchip_memory_mbytes=1.0))
    return LAPRuntime(lap, TILE, policy=policy, timing=timing, memory=memory,
                      on_chip_kb=on_chip_kb, bandwidth_gbs=bandwidth_gbs,
                      local_store_kb=local_store_kb,
                      stall_overlap=stall_overlap,
                      core_frequencies_ghz=frequencies, fast=fast)


def make_tiles(nb=6):
    """Operand tile dicts: identity-like blocks keep every kernel exact
    (SPD and diagonally dominant), shared across operands (tasks only read
    shapes under memoized timing after the per-signature warm-up)."""
    block = np.eye(TILE) * TILE
    blocks = {(i, j): block.copy() for i in range(nb) for j in range(nb)}
    return {name: {k: v.copy() for k, v in blocks.items()}
            for name in ("A", "B", "C", "L")}


def assert_stats_identical(ref, fast):
    assert set(ref) == set(fast)
    for key in sorted(ref):
        rv, fv = ref[key], fast[key]
        assert type(rv) is type(fv), f"{key}: {type(rv)} vs {type(fv)}"
        assert rv == fv, f"{key}: {rv!r} != {fv!r}"


def assert_executions_identical(ref_rt, fast_rt):
    ref_rows, fast_rows = ref_rt.executions, fast_rt.executions
    assert len(ref_rows) == len(fast_rows)
    fields = [f.name for f in dataclasses.fields(ref_rows[0])]
    for a, b in zip(ref_rows, fast_rows):
        for name in fields:
            rv, fv = getattr(a, name), getattr(b, name)
            assert type(rv) is type(fv), f"{name}: {type(rv)} vs {type(fv)}"
            assert rv == fv, f"task {a.task_id} {name}: {rv!r} != {fv!r}"


def assert_runs_identical(ref_rt, fast_rt, graph, verify=False):
    ref_stats = ref_rt.execute(graph, make_tiles(), verify=verify)
    fast_stats = fast_rt.execute(graph, make_tiles(), verify=verify)
    assert not ref_rt.last_fast and fast_rt.last_fast
    assert_stats_identical(ref_stats, fast_stats)
    assert_executions_identical(ref_rt, fast_rt)
    ref_att, fast_att = ref_rt.attribution(), fast_rt.attribution()
    assert ref_att.as_dict() == fast_att.as_dict()
    fast_att.check()
    ref_trace, fast_trace = ref_rt.schedule_trace(), fast_rt.schedule_trace()
    assert ref_trace.task_ids == fast_trace.task_ids
    assert ref_trace.cores == fast_trace.cores
    assert ref_trace.starts == fast_trace.starts
    assert ref_trace.ends == fast_trace.ends
    assert ref_trace.total_spill_bytes == fast_trace.total_spill_bytes
    assert ref_trace.total_movement_cycles == fast_trace.total_movement_cycles
    assert ref_trace.makespan_cycles == fast_trace.makespan_cycles
    assert ref_trace.frequency_ghz == fast_trace.frequency_ghz
    assert ref_trace.homogeneous_cores == fast_trace.homogeneous_cores
    assert ref_trace.energy_constants == fast_trace.energy_constants
    assert ref_trace.flush_writeback_bytes == fast_trace.flush_writeback_bytes
    if ref_trace.energy_constants is not None:
        # Both paths' per-task energy triples must re-key the energy column
        # bit for bit at the recorded constants -- the identity every replay
        # delta builds on.
        expected = ref_stats["energy_j"]
        assert ref_trace.rekey_energy_j(*ref_trace.energy_constants) == expected
        assert (fast_trace.rekey_energy_j(*fast_trace.energy_constants)
                == expected)
    return ref_stats


# ------------------------------------------------- full workload x policy matrix
@pytest.mark.parametrize("algorithm", sorted(SIZES))
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("local_store_kb", LEVELS)
def test_fast_matches_reference(algorithm, policy, local_store_kb):
    graph = AlgorithmsByBlocks(TILE).build(algorithm, SIZES[algorithm])
    ref_rt = make_runtime(False, policy=policy, local_store_kb=local_store_kb)
    fast_rt = make_runtime(True, policy=policy, local_store_kb=local_store_kb)
    stats = assert_runs_identical(ref_rt, fast_rt, graph)
    # The constrained capacity must actually exercise the eviction machinery,
    # otherwise the matrix pins only the trivially-resident regime.
    assert stats["spill_bytes"] > 0


def test_specialized_greedy_loop_and_lazy_rows():
    """Greedy + single-level + memoized + homogeneous takes the specialized
    loop (lazily materialised execution records) and is still identical."""
    graph = AlgorithmsByBlocks(TILE).cholesky_tasks(48)
    ref_rt = make_runtime(False)
    fast_rt = make_runtime(True)
    assert_runs_identical(ref_rt, fast_rt, graph)
    # The specialized loop defers row construction to a builder closure.
    assert fast_rt._exec_build is not None
    fast_rt.executions  # materialise -- covered field-by-field above


def test_verify_true_keeps_tiles_exact_and_identical():
    graph = AlgorithmsByBlocks(TILE).cholesky_tasks(40)
    ref_rt = make_runtime(False, local_store_kb=1.0)
    fast_rt = make_runtime(True, local_store_kb=1.0)
    assert_runs_identical(ref_rt, fast_rt, graph, verify=True)


def test_generic_fast_loop_variants_identical():
    """Heterogeneous clocks / prefetch overlap / disabled memory all route
    through the generic fast loop; each stays byte-identical."""
    graph = AlgorithmsByBlocks(TILE).cholesky_tasks(40)
    for kwargs in ({"frequencies": [1.0, 2.0, 1.0, 2.0]},
                   {"stall_overlap": 0.5, "local_store_kb": 1.0},
                   {"memory": False},
                   {"timing": "functional", "on_chip_kb": None}):
        ref_rt = make_runtime(False, **kwargs)
        fast_rt = make_runtime(True, **kwargs)
        assert_runs_identical(ref_rt, fast_rt, graph)


# ---------------------------------------------------------------- goldens
#: The committed PR-4 golden cases (kept in sync with
#: tests/test_lap_memory.py::GOLDEN_CASES); the fast path must reproduce the
#: golden rows -- not merely match a fresh reference run.
MEMORY_GOLDEN_CASES = [
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False},
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 4.0},
    {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 4.0,
     "policy": "memory_aware"},
    {"algorithm": "gemm", "n": 32, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 6.0},
    {"algorithm": "lu", "n": 40, "tile": 8, "num_cores": 2, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "on_chip_kb": 6.0,
     "policy": "memory_aware"},
    {"algorithm": "qr", "n": 32, "tile": 8, "num_cores": 1, "nr": 4,
     "seed": 0, "timing": "memoized", "verify": False, "bandwidth_gbs": 16.0,
     "on_chip_kb": 4.0},
]


def test_runner_fast_rows_match_memory_goldens():
    """`lap_runtime` rows with fast=True reproduce the committed golden
    sweep (and equal the reference rows exactly, not just to tolerance)."""
    golden = json.loads(
        (GOLDEN_DIR / "runtime" / "lap_runtime_memory.json").read_text())
    runner = get_runner("lap_runtime")
    assert len(golden) == len(MEMORY_GOLDEN_CASES)
    for case, expected in zip(MEMORY_GOLDEN_CASES, golden):
        ref_row = runner({**case, "replay": "off"})
        fast_row = runner({**case, "fast": True, "replay": "off"})
        assert ref_row == fast_row
        assert set(fast_row) == set(expected)
        for key, value in expected.items():
            if isinstance(value, float):
                assert fast_row[key] == pytest.approx(value, rel=1e-6,
                                                      abs=1e-15), key
            else:
                assert fast_row[key] == value, key


def test_runner_policy_golden_rows_survive_fast():
    """The PR-3 policy-comparison golden (makespans per policy/core count)
    is reproduced by the fast path."""
    golden = json.loads((GOLDEN_DIR / "runtime_policies.json").read_text())
    runner = get_runner("lap_runtime")
    for row in golden[:6]:
        fast_row = runner({"algorithm": "cholesky", "n": row["n"],
                           "tile": row["tile"], "num_cores": row["num_cores"],
                           "nr": 4, "seed": 0, "timing": "memoized",
                           "verify": False, "policy": row["policy"],
                           "fast": True, "replay": "off"})
        assert fast_row["makespan_cycles"] == row["makespan_cycles"]
        assert fast_row["tasks_executed"] == row["tasks"]


# ------------------------------------------ SoA batch kernels vs scalar oracle
TILE_BYTES = TILE * TILE * 8


def _tile_names(ids):
    return [("T", int(i)) for i in ids]


@st.composite
def residency_cases(draw):
    """A random residency state plus a random CSR batch of footprints."""
    ntiles = draw(st.integers(min_value=1, max_value=24))
    touches = draw(st.lists(
        st.lists(st.integers(0, ntiles - 1), min_size=1, max_size=6,
                 unique=True), min_size=0, max_size=12))
    foots = draw(st.lists(
        st.lists(st.integers(0, ntiles - 1), min_size=0, max_size=8,
                 unique=True), min_size=1, max_size=10))
    capacity_tiles = draw(st.integers(min_value=1, max_value=ntiles + 2))
    return ntiles, touches, foots, capacity_tiles


def _csr_batch(foots, interner, ntiles):
    """Intern every tile, then lay the footprints out as one CSR batch."""
    ids = [interner.intern(name) for name in _tile_names(range(ntiles))]
    indptr = np.zeros(len(foots) + 1, dtype=np.int64)
    np.cumsum([len(f) for f in foots], out=indptr[1:])
    indices = np.fromiter((ids[i] for f in foots for i in f),
                          dtype=np.int64, count=int(indptr[-1]))
    return indptr, indices


@given(residency_cases())
@settings(max_examples=60, deadline=None)
def test_residency_missing_bytes_batch_matches_scalar(case):
    from repro.lap.fastpath import FastTileResidency

    ntiles, touches, foots, cap = case
    res = FastTileResidency(cap * TILE_BYTES, TILE_BYTES)
    for foot in touches:
        res.touch(_tile_names(foot), [])
    indptr, indices = _csr_batch(foots, res._interner, ntiles)
    batch = res.missing_bytes_batch(indptr, indices)
    assert batch.tolist() == [res.missing_bytes(_tile_names(f))
                              for f in foots]


@given(residency_cases())
@settings(max_examples=60, deadline=None)
def test_local_store_batch_kernels_match_scalar(case):
    from repro.lap.fastpath import FastLocalStore

    ntiles, touches, foots, cap = case
    store = FastLocalStore(cap * TILE_BYTES, TILE_BYTES)
    for foot in touches:
        store.touch(_tile_names(foot))
    indptr, indices = _csr_batch(foots, store._interner, ntiles)
    missing = store.missing_bytes_batch(indptr, indices)
    held = store.resident_footprint_bytes_batch(indptr, indices)
    assert missing.tolist() == [store.missing_bytes(_tile_names(f))
                                for f in foots]
    assert held.tolist() == [store.resident_footprint_bytes(_tile_names(f))
                             for f in foots]
    # Complementarity on duplicate-free footprints.
    assert all(m + h == len(f) * TILE_BYTES
               for m, h, f in zip(missing, held, foots))


def test_bulk_priorities_match_scalar_keys():
    """`MemoryAware.bulk_priorities` reproduces the scalar priority keys
    (values and types) over a live fast hierarchy, both hierarchies."""
    from repro.lap.policies import MemoryAware

    for local_store_kb in LEVELS:
        rt = make_runtime(True, policy="memory_aware",
                          local_store_kb=local_store_kb)
        graph = AlgorithmsByBlocks(TILE).cholesky_tasks(40)
        rt.execute(graph, make_tiles(), verify=False)
        arrays = graph.fast_arrays()
        memory = rt.last_memory
        policy = MemoryAware()
        policy.bind_memory(memory)
        indices = list(range(0, len(arrays.tasks), 3))
        ready = [float(i) for i in range(len(indices))]
        bulk = policy.bulk_priorities(arrays, memory, indices, ready)
        assert len(bulk) == len(indices)
        for pos, key, r in zip(indices, bulk, ready):
            scalar = policy.priority(arrays.tasks[pos], r)
            assert key == scalar
            assert all(type(a) is type(b) for a, b in zip(key, scalar))
        # Non-fast hierarchies fall back to scalar scoring.
        assert policy.bulk_priorities(arrays, None, indices, ready) is None
        assert policy.bulk_priorities(arrays, memory, [], []) == []


# ----------------------------------------------------------------- replay
def test_schedule_trace_payload_roundtrip():
    """The sidecar header round-trips everything `exact_for` depends on."""
    import json

    from repro.lap.fastpath import ScheduleTrace

    trace = ScheduleTrace(policy="greedy", timing="memoized",
                          stall_overlap=0.25, effective_bandwidth_gbs=12.5,
                          default_bandwidth_gbs=16.0,
                          total_spill_bytes=4096.0,
                          total_movement_cycles=0.0,
                          task_ids=[1, 2, 3], cores=[0, 1, 0],
                          starts=[0.0, 1.0, 2.0], ends=[1.0, 2.0, 3.0])
    payload = json.loads(json.dumps(trace.to_payload()))  # disk round-trip
    loaded = ScheduleTrace.from_payload(payload)
    assert len(loaded) == len(trace) == 3
    for bandwidth in (None, 12.5, 64.0):
        for overlap in (0.25, 0.75):
            assert (loaded.exact_for(bandwidth, overlap)
                    == trace.exact_for(bandwidth, overlap))
    # None bandwidth (memory accounting disabled) survives the round trip.
    nomem = ScheduleTrace(policy="greedy", timing="functional",
                          stall_overlap=0.0, effective_bandwidth_gbs=None,
                          default_bandwidth_gbs=16.0, total_spill_bytes=0.0,
                          total_movement_cycles=0.0, task_ids=[], cores=[],
                          starts=[], ends=[])
    again = ScheduleTrace.from_payload(
        json.loads(json.dumps(nomem.to_payload())))
    assert again.effective_bandwidth_gbs is None
    assert again.exact_for(32.0, 0.0)


def test_replay_delta_rows_equal_resimulation():
    """A bandwidth/overlap delta point replayed from a recorded schedule is
    byte-identical to re-simulating it, and replay refuses (re-simulates)
    when spills make the delta schedule-visible."""
    from repro.lap.fastpath import REPLAY_STATS

    runner = get_runner("lap_runtime")
    base = {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2,
            "nr": 4, "seed": 11, "timing": "memoized", "verify": False,
            "fast": True}
    # Unconstrained capacity: zero spill traffic, so a bandwidth delta is
    # provably schedule-invariant and must be replayed.
    runner(dict(base))  # records the trace
    before = dict(REPLAY_STATS)
    replayed = runner({**base, "bandwidth_gbs": 64.0})
    assert REPLAY_STATS["replayed"] == before["replayed"] + 1
    resim = runner({**base, "bandwidth_gbs": 64.0, "replay": "off"})
    assert replayed == resim
    # Constrained capacity: spills couple bandwidth to the schedule, so the
    # delta must force a re-simulation (and still agree with replay="off").
    tight = {**base, "seed": 12, "on_chip_kb": 4.0}
    first = runner(dict(tight))
    assert first["spill_bytes"] > 0
    before = dict(REPLAY_STATS)
    forced = runner({**tight, "bandwidth_gbs": 64.0})
    assert REPLAY_STATS["forced"] == before["forced"] + 1
    assert forced == runner({**tight, "bandwidth_gbs": 64.0, "replay": "off"})


def test_frequency_and_energy_replay_equal_resimulation():
    """Chip-clock and off-chip-energy delta points replayed from a recorded
    schedule are byte-identical (keys, order, values, types) to
    re-simulating them, across non-greedy policies and both hierarchies --
    including the re-keyed makespan_ns / energy_j / gflops_per_w columns."""
    from repro.lap.fastpath import REPLAY_STATS

    runner = get_runner("lap_runtime")
    for policy, local_store_kb in (("memory_aware", None), ("affinity", 1.0)):
        base = {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2,
                "nr": 4, "seed": 21, "timing": "memoized", "verify": False,
                "policy": policy, "fast": True}
        if local_store_kb is not None:
            base["local_store_kb"] = local_store_kb
        runner(dict(base))  # records the trace
        for delta in ({"frequency_ghz": 2.0},
                      {"offchip_pj_per_byte": 30.0},
                      {"frequency_ghz": 0.5, "offchip_pj_per_byte": 120.0,
                       "bandwidth_gbs": 64.0}):
            before = dict(REPLAY_STATS)
            replayed = runner({**base, **delta})
            assert REPLAY_STATS["replayed"] == before["replayed"] + 1, delta
            resim = runner({**base, **delta, "replay": "off"})
            assert list(replayed) == list(resim), delta
            for key in resim:
                assert type(replayed[key]) is type(resim[key]), (delta, key)
                assert replayed[key] == resim[key], (delta, key)


def test_frequency_replay_rejections_force_resimulation():
    """Heterogeneous clocks and spill-coupled stalls both disqualify the
    frequency axis; the forced re-simulation still matches replay='off'."""
    from repro.lap.fastpath import REPLAY_STATS

    runner = get_runner("lap_runtime")
    base = {"algorithm": "cholesky", "n": 48, "tile": 8, "num_cores": 2,
            "nr": 4, "seed": 27, "timing": "memoized", "verify": False,
            "fast": True}
    # Heterogeneous per-core clocks (either side) reject the delta.
    het = {**base, "core_frequencies_ghz": "1.0:2.0"}
    runner(dict(het))
    before = dict(REPLAY_STATS)
    forced = runner({**het, "frequency_ghz": 2.0})
    assert REPLAY_STATS["forced"] == before["forced"] + 1
    assert forced == runner({**het, "frequency_ghz": 2.0, "replay": "off"})
    # Spill traffic enters the cycle domain through clock-dependent stalls.
    tight = {**base, "seed": 28, "on_chip_kb": 4.0}
    first = runner(dict(tight))
    assert first["spill_bytes"] > 0
    before = dict(REPLAY_STATS)
    forced = runner({**tight, "frequency_ghz": 2.0})
    assert REPLAY_STATS["forced"] == before["forced"] + 1
    assert forced == runner({**tight, "frequency_ghz": 2.0, "replay": "off"})


def test_exact_for_energy_and_frequency_gates():
    """`exact_for` widens only with full provenance: an energy-constant
    delta needs the recorded constants plus per-task triples, a frequency
    delta a known homogeneous recorded clock; header-only round trips
    (which drop the triples) reject every re-keying delta."""
    from repro.lap.fastpath import ScheduleTrace

    kw = dict(policy="greedy", timing="memoized", stall_overlap=0.0,
              effective_bandwidth_gbs=16.0, default_bandwidth_gbs=16.0,
              total_spill_bytes=0.0, total_movement_cycles=0.0,
              task_ids=[1], cores=[0], starts=[0.0], ends=[1.0])
    triples = [(10.0, 100.0, 50.0)]
    full = ScheduleTrace(**kw, makespan_cycles=100.0, frequency_ghz=1.0,
                         homogeneous_cores=True,
                         energy_constants=(1e-12, 2e-12, 60e-12),
                         flush_writeback_bytes=64.0, energy_triples=triples)
    # Unchanged constants replay without re-keying; a changed off-chip
    # constant or clock is exact only because the triples allow re-keying.
    assert full.exact_for(16.0, 0.0, frequency_ghz=1.0,
                          offchip_energy_per_byte_j=60e-12)
    assert full.exact_for(16.0, 0.0, offchip_energy_per_byte_j=30e-12)
    assert full.exact_for(16.0, 0.0, frequency_ghz=2.0)
    assert full.rekey_energy_j(2e-12, 1e-12, 30e-12) == (
        (10.0 * 2e-12 + 100.0 * 1e-12) + 50.0 * 30e-12 + 64.0 * 30e-12)
    # Heterogeneity on either side rejects the frequency axis.
    assert not full.exact_for(16.0, 0.0, frequency_ghz=2.0,
                              homogeneous_cores=False)
    het = ScheduleTrace(**kw, frequency_ghz=1.0, homogeneous_cores=False,
                        energy_constants=(1e-12, 2e-12, 60e-12),
                        energy_triples=triples)
    assert not het.exact_for(16.0, 0.0, frequency_ghz=2.0)
    # The sidecar header drops the triples: the same deltas now reject,
    # re-keying raises, and the unchanged point still replays.
    header = ScheduleTrace.from_payload(full.to_payload())
    assert not header.has_energy_triples
    assert header.exact_for(16.0, 0.0, frequency_ghz=1.0,
                            offchip_energy_per_byte_j=60e-12)
    assert not header.exact_for(16.0, 0.0, offchip_energy_per_byte_j=30e-12)
    assert not header.exact_for(16.0, 0.0, frequency_ghz=2.0)
    with pytest.raises(ValueError):
        header.rekey_energy_j(1e-12, 2e-12, 60e-12)
    # No recorded constants at all: any energy check rejects outright.
    bare = ScheduleTrace(**kw)
    assert not bare.exact_for(16.0, 0.0, offchip_energy_per_byte_j=60e-12)
    # An unknown recorded clock (legacy payload) rejects the axis.
    legacy_payload = {k: v for k, v in full.to_payload().items()
                      if k != "frequency_ghz"}
    legacy = ScheduleTrace.from_payload(legacy_payload)
    assert not legacy.exact_for(16.0, 0.0, frequency_ghz=2.0)
