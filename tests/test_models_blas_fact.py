"""Tests for the level-3 BLAS and factorization analytical models (Chaps. 5-6)."""

import pytest

from repro.hw.sfu import SFUPlacement
from repro.models.blas_model import BlasCoreModel, Level3Operation
from repro.models.fact_model import (FactorizationKernel, FactorizationKernelModel,
                                     MACExtension)


# ------------------------------------------------------------- BLAS model
@pytest.fixture
def blas():
    return BlasCoreModel(nr=4)


def test_gemm_has_highest_utilization_at_design_point(blas):
    """Fig. 5.10: GEMM >= TRSM >= SYRK >= SYR2K at the common design point."""
    results = blas.compare_operations(mc=256, kc=256, n=512,
                                      bandwidth_elements_per_cycle=0.5)
    by_op = {r.operation: r.utilization for r in results}
    assert by_op[Level3Operation.GEMM] >= by_op[Level3Operation.TRSM]
    assert by_op[Level3Operation.TRSM] >= by_op[Level3Operation.SYRK] - 1e-9
    assert by_op[Level3Operation.SYRK] >= by_op[Level3Operation.SYR2K]


def test_design_point_utilizations_match_paper_ranges(blas):
    """Paper: ~100% GEMM, ~95% TRSM, ~90% SYRK, ~80-85% SYR2K at 20 KB/PE, 4 B/cyc."""
    results = {r.operation: r for r in blas.compare_operations(
        mc=256, kc=256, n=512, bandwidth_elements_per_cycle=0.5)}
    assert results[Level3Operation.GEMM].utilization > 0.93
    assert results[Level3Operation.TRSM].utilization > 0.90
    assert results[Level3Operation.SYRK].utilization > 0.85
    assert results[Level3Operation.SYR2K].utilization > 0.75


def test_trsm_inner_kernel_utilization_formula(blas):
    """Software-pipelined stacked TRSM: g*(nr+1) / (2*(g+1)*nr) ~ 60% for large g."""
    assert blas.trsm_stacked_utilization(g=1) == pytest.approx(5.0 / 16.0)
    assert blas.trsm_stacked_utilization(g=100) == pytest.approx(0.625, abs=0.01)


def test_trsm_blocked_utilization_grows_with_blocks(blas):
    assert blas.trsm_blocked_utilization(1) < blas.trsm_blocked_utilization(8) \
        < blas.trsm_blocked_utilization(64)
    assert blas.trsm_blocked_utilization(64) > 0.95


def test_trsm_average_bandwidth_shrinks_with_panel_height(blas):
    assert blas.trsm_average_bandwidth(4) > blas.trsm_average_bandwidth(32)


def test_syrk_inner_utilization_grows_with_blocks(blas):
    assert blas.syrk_inner_utilization(1) == pytest.approx(0.5)
    assert blas.syrk_inner_utilization(64) > 0.95


def test_syr2k_doubles_bandwidth_pressure(blas):
    syrk = blas.utilization(Level3Operation.SYRK, 128, 128, 512, 0.5)
    syr2k = blas.utilization(Level3Operation.SYR2K, 128, 128, 512, 0.5)
    assert syr2k.utilization <= syrk.utilization


def test_sweep_shapes(blas):
    rows = blas.sweep_local_store(Level3Operation.SYRK, bandwidths=[0.5, 1.0],
                                  kc_values=[64, 128, 256])
    assert len(rows) == 6
    assert all(0 < r.utilization <= 1 for r in rows)


def test_blas_model_validation(blas):
    with pytest.raises(ValueError):
        blas.trsm_stacked_utilization(0)
    with pytest.raises(ValueError):
        blas.trsm_blocked_utilization(0)
    with pytest.raises(ValueError):
        blas.syrk_inner_utilization(0)
    with pytest.raises(ValueError):
        BlasCoreModel(mac_pipeline_stages=0)


# ---------------------------------------------------- factorization model
@pytest.fixture
def fact():
    return FactorizationKernelModel(nr=4)


def test_cholesky_cycle_count_includes_sfu_latency(fact):
    sw = fact.cholesky_cycles(SFUPlacement.SOFTWARE)
    hw = fact.cholesky_cycles(SFUPlacement.DIAGONAL)
    assert sw > hw > 0


def test_lu_comparator_extension_saves_cycles(fact):
    base = fact.lu_panel_cycles(128, SFUPlacement.ISOLATED, MACExtension.NONE)
    with_cmp = fact.lu_panel_cycles(128, SFUPlacement.ISOLATED, MACExtension.COMPARATOR)
    assert with_cmp < base


def test_vector_norm_exponent_extension_saves_cycles(fact):
    base = fact.vector_norm_cycles(256, SFUPlacement.ISOLATED, MACExtension.NONE)
    with_exp = fact.vector_norm_cycles(256, SFUPlacement.ISOLATED, MACExtension.EXPONENT)
    assert with_exp < base


def test_hardware_sfu_beats_software_for_all_kernels(fact):
    for kernel in (FactorizationKernel.LU, FactorizationKernel.VECTOR_NORM,
                   FactorizationKernel.QR_HOUSEHOLDER):
        sw = fact.evaluate(kernel, 128, SFUPlacement.SOFTWARE, MACExtension.NONE)
        hw = fact.evaluate(kernel, 128, SFUPlacement.DIAGONAL, MACExtension.NONE)
        assert hw.cycles < sw.cycles, kernel


def test_power_efficiency_improves_with_problem_size(fact):
    """Figs. 6.6/6.7: bigger inner kernels amortise the serial steps."""
    small = fact.evaluate(FactorizationKernel.LU, 64, SFUPlacement.DIAGONAL,
                          MACExtension.COMPARATOR)
    large = fact.evaluate(FactorizationKernel.LU, 256, SFUPlacement.DIAGONAL,
                          MACExtension.COMPARATOR)
    assert large.gflops_per_watt(1.0) > small.gflops_per_watt(1.0)
    assert large.utilization > small.utilization


def test_extensions_improve_lu_power_efficiency(fact):
    base = fact.evaluate(FactorizationKernel.LU, 256, SFUPlacement.DIAGONAL,
                         MACExtension.NONE)
    ext = fact.evaluate(FactorizationKernel.LU, 256, SFUPlacement.DIAGONAL,
                        MACExtension.COMPARATOR)
    assert ext.gflops_per_watt(1.0) > base.gflops_per_watt(1.0)


def test_sweep_covers_all_requested_options(fact):
    rows = fact.sweep(FactorizationKernel.VECTOR_NORM, sizes=[64, 128],
                      placements=[SFUPlacement.SOFTWARE, SFUPlacement.DIAGONAL],
                      extensions=[MACExtension.NONE, MACExtension.EXPONENT])
    assert len(rows) == 8
    assert all(r.cycles > 0 and r.dynamic_energy_j > 0 for r in rows)


def test_efficiency_wrapper_produces_valid_metrics(fact):
    res = fact.evaluate(FactorizationKernel.CHOLESKY, 4, SFUPlacement.ISOLATED)
    eff = fact.efficiency(res, core_area_mm2=2.8)
    assert eff.gflops_per_watt > 0
    assert eff.area_mm2 == 2.8


def test_fact_model_validation(fact):
    with pytest.raises(ValueError):
        FactorizationKernelModel(nr=1)
    with pytest.raises(ValueError):
        fact.lu_panel_cycles(2, SFUPlacement.ISOLATED, MACExtension.NONE)
    with pytest.raises(ValueError):
        fact.vector_norm_cycles(0, SFUPlacement.ISOLATED, MACExtension.NONE)
    with pytest.raises(ValueError):
        fact.qr_panel_cycles(2, SFUPlacement.ISOLATED, MACExtension.NONE)
