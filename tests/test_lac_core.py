"""Tests for the LAC core simulator: distribution, rank-1 engine, collectives."""

import math

import numpy as np
import pytest

from repro.hw.sfu import SFUPlacement, SpecialOp
from repro.lac.core import LACConfig, LinearAlgebraCore
from repro.lac.pe import PEConfig


@pytest.fixture
def core():
    return LinearAlgebraCore(LACConfig(nr=4, pe=PEConfig(store_a_words=256, store_b_words=64)))


def test_default_configuration_is_4x4():
    core = LinearAlgebraCore()
    assert core.nr == 4
    assert core.num_pes == 16


def test_config_validation():
    with pytest.raises(ValueError):
        LACConfig(nr=1)
    with pytest.raises(ValueError):
        LACConfig(frequency_ghz=0.0)


def test_distribute_a_round_robin_layout(core):
    a = np.arange(8 * 8, dtype=float).reshape(8, 8)
    words = core.distribute_a(a)
    assert words == 4  # ceil(8/4) * ceil(8/4)
    # a[i, p] lives in PE (i mod 4, p mod 4); a[5, 6] is the second row/col block.
    assert core.pe(1, 2).store_a[3] == a[5, 6]
    assert core.pe(0, 0).store_a[0] == a[0, 0]
    assert core.counters.external_loads == 64


def test_distribute_b_replication(core):
    b = np.arange(8 * 4, dtype=float).reshape(8, 4)
    k = core.distribute_b_replicated(b)
    assert k == 8
    # Every PE in column j holds the whole column j of B.
    for i in range(4):
        assert core.pe(i, 2).store_b[5] == b[5, 2]


def test_distribute_b_requires_nr_columns(core):
    with pytest.raises(ValueError):
        core.distribute_b_replicated(np.zeros((8, 3)))


def test_accumulator_load_store_round_trip(core):
    c = np.arange(16, dtype=float).reshape(4, 4)
    core.load_c_accumulators(c)
    out = core.store_c_accumulators()
    np.testing.assert_allclose(out, c)
    assert core.counters.external_loads == 16
    assert core.counters.external_stores == 16


def test_rank1_update_step_computes_outer_product(core):
    core.load_c_accumulators(np.zeros((4, 4)))
    a_col = np.array([1.0, 2.0, 3.0, 4.0])
    b_row = np.array([5.0, 6.0, 7.0, 8.0])
    core.rank1_update_step(a_col, b_row)
    out = core.store_c_accumulators()
    np.testing.assert_allclose(out, np.outer(a_col, b_row))
    assert core.counters.mac_ops == 16


def test_rank1_update_step_is_one_cycle(core):
    core.load_c_accumulators(np.zeros((4, 4)))
    before = core.counters.cycles
    core.rank1_update_step([1, 1, 1, 1], [1, 1, 1, 1])
    assert core.counters.cycles == before + 1


def test_rank1_operand_length_checked(core):
    with pytest.raises(ValueError):
        core.rank1_update_step([1.0, 2.0], [1.0, 2.0, 3.0, 4.0])


def test_transpose_via_diagonal(core):
    values = [1.0, 2.0, 3.0, 4.0]
    out = core.transpose_via_diagonal(values)
    assert out == values
    assert core.counters.row_broadcasts >= 4
    assert core.counters.column_broadcasts >= 4


def test_reduce_column_sums_partials(core):
    total = core.reduce_column([1.0, 2.0, 3.0, 4.0])
    assert total == pytest.approx(10.0)
    assert core.counters.cycles > 0


def test_special_functions_return_exact_values(core):
    assert core.special(SpecialOp.RECIPROCAL, 4.0) == pytest.approx(0.25)
    assert core.special(SpecialOp.SQRT, 9.0) == pytest.approx(3.0)
    assert core.special(SpecialOp.INV_SQRT, 16.0) == pytest.approx(0.25)
    assert core.counters.sfu_ops == 3


def test_special_function_error_cases(core):
    with pytest.raises(ZeroDivisionError):
        core.special(SpecialOp.RECIPROCAL, 0.0)
    with pytest.raises(ValueError):
        core.special(SpecialOp.SQRT, -1.0)
    with pytest.raises(ValueError):
        core.special(SpecialOp.INV_SQRT, 0.0)


def test_software_sfu_consumes_mac_slots():
    core_sw = LinearAlgebraCore(LACConfig(nr=4, sfu_placement=SFUPlacement.SOFTWARE))
    core_hw = LinearAlgebraCore(LACConfig(nr=4, sfu_placement=SFUPlacement.ISOLATED))
    core_sw.special(SpecialOp.RECIPROCAL, 2.0)
    core_hw.special(SpecialOp.RECIPROCAL, 2.0)
    assert core_sw.counters.mac_ops > core_hw.counters.mac_ops
    assert core_sw.counters.cycles > core_hw.counters.cycles


def test_tick_and_drain(core):
    core.tick(5)
    core.drain_pipeline()
    assert core.counters.cycles == 5 + core.mac_latency
    with pytest.raises(ValueError):
        core.tick(-1)


def test_utilization_and_gflops_reporting(core):
    core.load_c_accumulators(np.zeros((4, 4)))
    for _ in range(10):
        core.rank1_update_step([1, 1, 1, 1], [1, 1, 1, 1])
    assert 0.0 < core.utilization() <= 1.0
    assert core.achieved_gflops() > 0.0
    assert core.elapsed_seconds() > 0.0


def test_reset_counters_preserves_memory_contents(core):
    a = np.ones((4, 4))
    core.distribute_a(a)
    core.reset_counters()
    assert core.counters.cycles == 0
    assert core.pe(0, 0).store_a[0] == 1.0
