"""Functional tests for the radix-4 FFT kernel on the LAC."""

import numpy as np
import pytest

from repro.kernels.fft import lac_fft
from repro.lac.core import LinearAlgebraCore
from repro.models.fft_model import FMA_OPS_PER_RADIX4_BUTTERFLY
from repro.reference import ref_dft, ref_fft_radix4


@pytest.fixture
def core():
    return LinearAlgebraCore()


@pytest.fixture
def rng():
    return np.random.default_rng(99)


@pytest.mark.parametrize("n", [4, 16, 64, 256])
def test_fft_matches_numpy(core, rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    result = lac_fft(core, x)
    np.testing.assert_allclose(result.output, np.fft.fft(x), rtol=1e-10, atol=1e-10)


def test_fft_matches_reference_radix4_and_dft(rng):
    x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    np.testing.assert_allclose(ref_fft_radix4(x), np.fft.fft(x), rtol=1e-10, atol=1e-10)
    np.testing.assert_allclose(ref_dft(x), np.fft.fft(x), rtol=1e-8, atol=1e-8)


def test_fft_of_impulse_is_flat(core):
    x = np.zeros(64, dtype=complex)
    x[0] = 1.0
    result = lac_fft(core, x)
    np.testing.assert_allclose(result.output, np.ones(64, dtype=complex), atol=1e-12)


def test_fft_of_constant_is_impulse(core):
    x = np.ones(64, dtype=complex)
    result = lac_fft(core, x)
    expected = np.zeros(64, dtype=complex)
    expected[0] = 64.0
    np.testing.assert_allclose(result.output, expected, atol=1e-10)


def test_fft_linearity(core, rng):
    x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    y = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    fx = lac_fft(LinearAlgebraCore(), x).output
    fy = lac_fft(LinearAlgebraCore(), y).output
    fxy = lac_fft(LinearAlgebraCore(), 2.0 * x + 3.0 * y).output
    np.testing.assert_allclose(fxy, 2.0 * fx + 3.0 * fy, rtol=1e-9, atol=1e-9)


def test_fft_parseval_energy_conservation(core, rng):
    x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
    result = lac_fft(core, x)
    energy_time = np.sum(np.abs(x) ** 2)
    energy_freq = np.sum(np.abs(result.output) ** 2) / 256
    assert energy_freq == pytest.approx(energy_time, rel=1e-10)


def test_fft_counts_butterfly_fma_operations(core, rng):
    n = 64
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    result = lac_fft(core, x)
    stages = 3  # log4(64)
    expected_macs = stages * (n // 4) * FMA_OPS_PER_RADIX4_BUTTERFLY
    assert result.counters.mac_ops == expected_macs


def test_fft_rejects_non_power_of_four_lengths(core, rng):
    with pytest.raises(ValueError):
        lac_fft(core, rng.standard_normal(8))   # power of two, not of four
    with pytest.raises(ValueError):
        lac_fft(core, rng.standard_normal(12))
    with pytest.raises(ValueError):
        lac_fft(core, rng.standard_normal(2))


def test_large_fft_uses_four_step_decomposition(rng):
    """A 4096-point transform blocked at 64 points must still be correct."""
    x = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
    result = lac_fft(LinearAlgebraCore(), x, block_points=64)
    np.testing.assert_allclose(result.output, np.fft.fft(x), rtol=1e-9, atol=1e-8)


def test_fft_charges_external_transfers(core, rng):
    result = lac_fft(core, rng.standard_normal(64) + 0j)
    assert result.counters.external_loads >= 2 * 64
    assert result.counters.external_stores >= 2 * 64
    assert result.cycles > 0
