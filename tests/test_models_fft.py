"""Tests for the FFT analytical model (Appendix B)."""

import math

import pytest

from repro.models.fft_model import (FFTCoreModel, FFTProblem, FFTVariant,
                                    FMA_OPS_PER_RADIX4_BUTTERFLY)


@pytest.fixture
def model():
    return FFTCoreModel(nr=4, mac_pipeline_stages=8)


def test_problem_validation():
    with pytest.raises(ValueError):
        FFTProblem(points=3)
    with pytest.raises(ValueError):
        FFTProblem(points=48)
    problem = FFTProblem(points=64)
    assert problem.stages_radix4 == 3
    assert problem.complex_bytes == 16
    assert problem.total_flops == pytest.approx(5 * 64 * 6)


def test_core_fft_cycles_scale_with_problem_size(model):
    small = model.core_fft_cycles(64)
    large = model.core_fft_cycles(256)
    assert large > small
    # 256 points has 4 stages of 64 butterflies vs 3 stages of 16: > 4x work.
    assert large > 3.0 * small


def test_core_fft_utilization_reasonable(model):
    util = model.core_fft_utilization(1024)
    assert 0.5 < util <= 1.0
    # Without overlapped I/O the utilisation drops.
    assert model.core_fft_utilization(1024, overlap_io=False) < util


def test_butterfly_count_per_stage(model):
    assert model.butterflies_per_stage(64) == 16
    with pytest.raises(ValueError):
        model.butterflies_per_stage(10)


def test_local_store_doubles_with_overlap(model):
    no = model.local_store_words_per_pe(64, overlap=False)
    yes = model.local_store_words_per_pe(64, overlap=True)
    assert yes > no


def test_required_bandwidth_below_column_bus_ceiling_for_64(model):
    """The paper notes 4 doubles/cycle is the ceiling; a 64-point block fits under it."""
    bw = model.required_bandwidth_words_per_cycle(64, overlap=True)
    assert bw <= model.max_external_bandwidth_words_per_cycle()


def test_small_blocks_demand_more_relative_bandwidth(model):
    small = model.required_bandwidth_words_per_cycle(16, overlap=True)
    large = model.required_bandwidth_words_per_cycle(1024, overlap=True)
    assert small > large


def test_large_fft_requirements_1d_vs_2d(model):
    one_d = model.large_fft_requirements(FFTProblem(65536, FFTVariant.ONE_D), 64)
    two_d = model.large_fft_requirements(FFTProblem(65536, FFTVariant.TWO_D), 64)
    assert one_d["passes"] == two_d["passes"] == 2
    assert one_d["core_ffts"] == 2 * 65536 // 64
    assert one_d["compute_cycles"] > 0
    assert one_d["io_words"] == two_d["io_words"]


def test_average_communication_load_positive_and_bounded(model):
    load = model.average_communication_load(FFTProblem(65536), 64)
    assert 0.0 < load <= 2 * model.max_external_bandwidth_words_per_cycle()


def test_gflops_increases_with_frequency_and_overlap(model):
    problem = FFTProblem(65536)
    slow = model.gflops(problem, 0.5)
    fast = model.gflops(problem, 1.0)
    assert fast == pytest.approx(2.0 * slow)
    overlapped = model.gflops(problem, 1.0, overlap=True)
    serial = model.gflops(problem, 1.0, overlap=False)
    assert overlapped > serial


def test_table_b1_contains_all_variants(model):
    rows = model.table_b1_requirements([64, 128])
    assert len(rows) == 8  # 2 sizes x 2 variants x overlap yes/no
    variants = {r["variant"] for r in rows}
    assert variants == {"1d", "2d"}
    overlapped = [r for r in rows if r["overlap"]]
    non_overlapped = [r for r in rows if not r["overlap"]]
    # Overlap costs local store but removes serialised I/O cycles.
    assert all(o["local_store_words_per_pe"] > n["local_store_words_per_pe"]
               for o, n in zip(overlapped, non_overlapped))


def test_model_validation(model):
    with pytest.raises(ValueError):
        FFTCoreModel(nr=1)
    with pytest.raises(ValueError):
        model.local_store_words_per_pe(0)
    with pytest.raises(ValueError):
        model.large_fft_requirements(FFTProblem(4096), block_points=2)
    with pytest.raises(ValueError):
        model.gflops(FFTProblem(4096), 0.0)
