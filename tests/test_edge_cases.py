"""Edge-case and failure-injection tests across module boundaries.

These exercise the error paths a downstream user is most likely to hit:
ill-conditioned or malformed operands handed to the kernels, inconsistent
configurations handed to the models, and numerical corner cases (huge/tiny
magnitudes, exactly-singular systems) that the guarded algorithms are
supposed to survive.
"""

import numpy as np
import pytest

from repro.hw.sfu import SpecialOp
from repro.kernels import (lac_cholesky, lac_fft, lac_gemm, lac_lu_blocked, lac_syrk,
                           lac_trsm, lac_vector_norm)
from repro.lac import LACConfig, LinearAlgebraCore
from repro.lac.pe import PEConfig
from repro.models.core_model import CoreGEMMModel
from repro.models.power import PowerComponent, PowerModel
from repro.reference import ref_trsm


@pytest.fixture
def rng():
    return np.random.default_rng(77)


# --------------------------------------------------------- numerical edges
def test_gemm_with_extreme_magnitudes(rng):
    """Mixed huge/tiny entries survive the accumulator path without overflow."""
    core = LinearAlgebraCore()
    a = rng.random((4, 4)) * 1e150
    b = rng.random((4, 4)) * 1e-150
    c = np.zeros((4, 4))
    result = lac_gemm(core, c, a, b)
    np.testing.assert_allclose(result.output, a @ b, rtol=1e-12)
    assert np.all(np.isfinite(result.output))


def test_gemm_with_negative_and_zero_rows(rng):
    core = LinearAlgebraCore()
    a = rng.standard_normal((8, 8))
    a[3, :] = 0.0
    b = -rng.standard_normal((8, 8))
    c = rng.standard_normal((8, 8))
    result = lac_gemm(core, c, a, b)
    np.testing.assert_allclose(result.output, c + a @ b, rtol=1e-12)


def test_trsm_near_singular_still_accurate(rng):
    """A tiny (but representable) diagonal entry must not break the solve."""
    core = LinearAlgebraCore()
    l = np.tril(rng.random((8, 8))) + 8 * np.eye(8)
    l[5, 5] = 1e-8
    b = rng.random((8, 8))
    result = lac_trsm(core, l, b)
    np.testing.assert_allclose(np.tril(l) @ result.output, b, rtol=1e-6, atol=1e-8)


def test_trsm_exactly_singular_rejected(rng):
    core = LinearAlgebraCore()
    l = np.tril(rng.random((8, 8))) + 8 * np.eye(8)
    l[5, 5] = 0.0
    with pytest.raises(ValueError):
        lac_trsm(core, l, rng.random((8, 8)))


def test_cholesky_of_nearly_indefinite_matrix_rejected(rng):
    core = LinearAlgebraCore()
    m = rng.random((8, 8))
    a = m @ m.T
    a -= (np.linalg.eigvalsh(a)[0] + 1e-3) * np.eye(8)   # push lowest eigenvalue negative
    a = (a + a.T) / 2.0
    with pytest.raises(ValueError):
        lac_cholesky(core, a)


def test_blocked_lu_of_permutation_matrix(rng):
    """A permutation matrix is an adversarial case for pivot bookkeeping."""
    core = LinearAlgebraCore()
    perm = np.eye(8)[rng.permutation(8), :]
    result = lac_lu_blocked(core, perm)
    from repro.kernels.blocked_factorizations import lu_blocked_reconstruct
    l, u = lu_blocked_reconstruct(result.output)
    np.testing.assert_allclose(np.abs(np.diag(u)), np.ones(8), atol=1e-12)
    np.testing.assert_allclose(l @ u, perm[result.extra["permutation"], :], atol=1e-12)


def test_vector_norm_of_single_element_and_constant_vectors():
    core = LinearAlgebraCore()
    assert lac_vector_norm(core, np.array([-3.0])).output == pytest.approx(3.0)
    assert lac_vector_norm(LinearAlgebraCore(), np.full(16, 2.0)).output == \
        pytest.approx(8.0)


def test_fft_of_alternating_signal():
    core = LinearAlgebraCore()
    x = np.array([1.0, -1.0] * 32, dtype=complex)
    result = lac_fft(core, x)
    expected = np.zeros(64, dtype=complex)
    expected[32] = 64.0
    np.testing.assert_allclose(result.output, expected, atol=1e-10)


def test_syrk_with_zero_operand(rng):
    core = LinearAlgebraCore()
    c = rng.random((8, 8))
    result = lac_syrk(core, c, np.zeros((8, 8)))
    lower = np.tril_indices(8)
    np.testing.assert_allclose(result.output[lower], c[lower])


# ------------------------------------------------------ configuration edges
def test_simulator_rejects_out_of_capacity_distribution(rng):
    """Distributing a block bigger than MEM A must fail loudly, not wrap."""
    tiny = LinearAlgebraCore(LACConfig(nr=4, pe=PEConfig(store_a_words=4, store_b_words=4)))
    with pytest.raises(IndexError):
        tiny.distribute_a(rng.random((32, 32)))


def test_special_function_domain_errors_are_contained():
    core = LinearAlgebraCore()
    with pytest.raises(ZeroDivisionError):
        core.special(SpecialOp.DIVIDE, 0.0)
    # The failed operation still charged its latency and was counted.
    assert core.counters.sfu_ops == 1
    assert core.counters.cycles > 0


def test_core_model_extreme_aspect_ratios():
    model = CoreGEMMModel(nr=4)
    wide = model.cycles(mc=4, kc=1024, n=4096, bandwidth_elements_per_cycle=2.0)
    tall = model.cycles(mc=1024, kc=4, n=4096, bandwidth_elements_per_cycle=2.0)
    assert 0.0 < wide.utilization <= 1.0
    assert 0.0 < tall.utilization <= 1.0


def test_power_model_all_idle_architecture():
    model = PowerModel(idle_ratio=0.3)
    breakdown = model.breakdown("gated", [PowerComponent("FPU", 10.0, activity=0.0)],
                                gflops=0.0)
    assert breakdown.dynamic_power_w == 0.0
    assert breakdown.total_power_w == 0.0
    assert breakdown.gflops_per_watt == 0.0


def test_reference_trsm_and_simulator_agree_on_ill_conditioned_system(rng):
    """Cross-check: both solvers degrade gracefully on an ill-conditioned L."""
    l = np.tril(rng.random((8, 8)))
    np.fill_diagonal(l, np.geomspace(1.0, 1e-6, 8))
    b = rng.random((8, 4))
    sim = lac_trsm(LinearAlgebraCore(), l, b).output
    ref = ref_trsm(l, b)
    np.testing.assert_allclose(sim, ref, rtol=1e-6, atol=1e-6)
