"""Tests for the observability layer: tracer, Chrome export, attribution,
run manifests and their runtime/engine integration."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cache import ResultCache
from repro.engine.executor import SweepExecutor
from repro.engine.spec import SweepSpec
from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.runtime import LAPRuntime
from repro.lap.timing import compose_task_cycles, decompose_task_cycles
from repro.obs import (NULL_TRACER, CycleAttribution, Span, Tracer, idle_gaps,
                       lac_trace_events, to_chrome_trace, tracer_events,
                       validate_chrome_trace, write_chrome_trace)
from repro.obs.manifest import (MANIFEST_SCHEMA, build_run_manifest,
                                manifest_path_for, write_run_manifest)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def make_runtime(num_cores=2, tracer=None, **kwargs):
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=num_cores, nr=4,
                                           onchip_memory_mbytes=1.0))
    kwargs.setdefault("timing", "memoized")
    return LAPRuntime(lap, 16, tracer=tracer, **kwargs)


# --------------------------------------------------------------- tracer
def test_tracer_records_spans_and_counters():
    tracer = Tracer()
    span = tracer.span("GEMM#0", track=1, start=10.0, end=26.0,
                       args={"compute_cycles": 16.0})
    assert span.duration == 16.0
    tracer.counter("bytes").add(64, ts=26.0)
    tracer.counter("bytes").add(36, ts=30.0)
    assert tracer.counter("bytes").value == 100.0
    assert tracer.counter("bytes").series == [(26.0, 64.0), (30.0, 100.0)]
    assert [s.name for s in tracer.spans] == ["GEMM#0"]


def test_disabled_tracer_is_a_noop():
    tracer = Tracer(enabled=False)
    assert tracer.span("x", track=0, start=0, end=1) is None
    tracer.counter("bytes").add(100, ts=1.0)
    assert tracer.spans == [] and tracer.counters == {}
    # NULL_TRACER is the shared disabled instance.
    assert NULL_TRACER.enabled is False
    NULL_TRACER.counter("y").add(5)
    assert NULL_TRACER.counters == {}


def test_span_rejects_negative_duration():
    with pytest.raises(ValueError):
        Span(name="bad", track=0, start=5.0, end=4.0)


def test_spans_by_track_groups_and_sorts():
    tracer = Tracer()
    tracer.span("b", track=0, start=5, end=6)
    tracer.span("a", track=0, start=1, end=2)
    tracer.span("c", track=3, start=0, end=1)
    grouped = tracer.spans_by_track()
    assert sorted(grouped) == [0, 3]
    assert [s.name for s in grouped[0]] == ["a", "b"]
    tracer.clear()
    assert tracer.spans == [] and tracer.enabled


# --------------------------------------------------- cycle decomposition
def test_decompose_inverts_compose():
    for overlap in (0.0, 0.25, 1.0):
        parts = decompose_task_cycles(100.0, 40.0, overlap,
                                      local_transfer_cycles=10.0)
        total = compose_task_cycles(100.0, 40.0, overlap,
                                    local_transfer_cycles=10.0)
        assert parts["total"] == total
        assert (parts["compute"] + parts["spill_stall"] + parts["transfer"]
                == pytest.approx(total))
        assert parts["hidden"] == pytest.approx(50.0 * overlap)


# ----------------------------------------------------------- attribution
def test_idle_gaps_complement_executions():
    class E:
        def __init__(self, core, start, end):
            self.core_index, self.start_cycle, self.end_cycle = core, start, end

    gaps = idle_gaps([E(0, 2.0, 5.0), E(0, 7.0, 9.0), E(1, 0.0, 4.0)],
                     num_cores=2, makespan=10.0)
    assert gaps == [(0, 0.0, 2.0), (0, 5.0, 7.0), (0, 9.0, 10.0),
                    (1, 4.0, 10.0)]
    # An idle third core is one full-makespan gap.
    assert idle_gaps([], num_cores=1, makespan=3.0) == [(0, 0.0, 3.0)]
    with pytest.raises(ValueError):
        idle_gaps([], num_cores=0, makespan=1.0)


@pytest.mark.parametrize("policy", ["greedy", "critical_path", "memory_aware"])
@pytest.mark.parametrize("local_kb,overlap", [(None, 0.0), (2.0, 0.0),
                                              (2.0, 0.5), (2.0, 1.0)])
def test_attribution_conserves_cycles(rng, policy, local_kb, overlap):
    runtime = make_runtime(num_cores=2, tracer=Tracer(), policy=policy,
                           on_chip_kb=8.0, bandwidth_gbs=8.0,
                           local_store_kb=local_kb, stall_overlap=overlap)
    runtime.run_blocked_cholesky(64, rng, verify=False)
    attribution = runtime.attribution()
    attribution.check(rel_tol=1e-6)
    totals = attribution.totals()
    assert sum(totals.values()) == pytest.approx(attribution.total_cycles,
                                                 rel=1e-6)
    assert attribution.total_cycles == pytest.approx(
        2 * runtime.last_makespan, rel=1e-12)
    if local_kb is not None and overlap < 1.0:
        assert totals["transfer"] > 0
    if overlap == 1.0:
        assert totals["spill_stall"] == pytest.approx(0.0)
        assert totals["transfer"] == pytest.approx(0.0)


@settings(max_examples=10, deadline=None)
@given(n_tiles=st.integers(min_value=2, max_value=4),
       cores=st.integers(min_value=1, max_value=3),
       overlap=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_attribution_conservation_property(n_tiles, cores, overlap, seed):
    runtime = make_runtime(num_cores=cores, on_chip_kb=6.0, bandwidth_gbs=4.0,
                           local_store_kb=1.0, stall_overlap=overlap)
    runtime.run_blocked_gemm(16 * n_tiles, np.random.default_rng(seed),
                             verify=False)
    attribution = runtime.attribution()
    attribution.check(rel_tol=1e-6)
    assert all(core.idle >= -1e-9 for core in attribution.per_core)


def test_attribution_check_rejects_double_booked_core():
    class E:
        core_index, start_cycle, end_cycle = 0, 0.0, 6.0
        stall_cycles = local_transfer_cycles = 0.0

    # Two overlapping 6-cycle tasks on one core of a 10-cycle schedule:
    # compute (12) + idle (4) != makespan (10).
    attribution = CycleAttribution.from_executions([E(), E()], 1, 10.0)
    with pytest.raises(ValueError, match="does not conserve"):
        attribution.check()


def test_attribution_round_trips_through_dict():
    class E:
        core_index, start_cycle, end_cycle = 0, 1.0, 5.0
        stall_cycles, local_transfer_cycles = 2.0, 1.0

    original = CycleAttribution.from_executions([E()], 2, 6.0,
                                                stall_overlap=0.5)
    original.check()
    rebuilt = CycleAttribution.from_dict(original.as_dict())
    assert rebuilt.as_dict() == original.as_dict()
    rebuilt.check()
    rows = rebuilt.table_rows()
    assert rows[-1]["core"] == "TOTAL"
    assert rows[-1]["compute_pct"] + rows[-1]["stall_pct"] + \
        rows[-1]["transfer_pct"] + rows[-1]["idle_pct"] == pytest.approx(100.0)


# --------------------------------------------------------- chrome export
def test_tracer_events_one_track_per_core(rng):
    tracer = Tracer()
    runtime = make_runtime(num_cores=2, tracer=tracer)
    runtime.run_blocked_cholesky(48, rng, verify=False)
    events = tracer_events(tracer, process_name="LAP test")
    thread_names = [e for e in events if e["name"] == "thread_name"]
    assert {e["tid"] for e in thread_names} == {0, 1}
    tasks = [e for e in events if e.get("cat") == "task"]
    assert tasks and {e["tid"] for e in tasks} == {0, 1}
    for event in tasks:
        for key in ("compute_cycles", "spill_stall_cycles",
                    "transfer_cycles", "task_id", "kind"):
            assert key in event["args"]


def test_runtime_trace_validates_and_covers_makespan(rng):
    tracer = Tracer()
    runtime = make_runtime(num_cores=2, tracer=tracer, on_chip_kb=8.0,
                           bandwidth_gbs=8.0)
    stats = runtime.run_blocked_lu(48, rng, verify=False)
    payload = to_chrome_trace(tracer)
    events = validate_chrome_trace(payload)
    spans = [e for e in events if e["ph"] == "X"]
    # task + idle spans tile each core's [0, makespan] exactly.
    for tid in (0, 1):
        track = sorted((e["ts"], e["ts"] + e["dur"]) for e in spans
                       if e["tid"] == tid)
        assert track[0][0] == 0.0
        assert track[-1][1] == pytest.approx(stats["makespan_cycles"])
        for (_, end), (start, _) in zip(track, track[1:]):
            assert start == pytest.approx(end)


def test_validate_rejects_malformed_traces():
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({"events": []})
    with pytest.raises(ValueError, match="missing required key 'pid'"):
        validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": 1, "tid": 0}]})
    with pytest.raises(ValueError, match="missing required key 'dur'"):
        validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]})
    with pytest.raises(ValueError, match="invalid ts"):
        validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "X", "ts": -1, "dur": 1, "pid": 0, "tid": 0}]})
    with pytest.raises(ValueError, match="overlaps"):
        validate_chrome_trace({"traceEvents": [
            {"name": "a", "cat": "task", "ph": "X", "ts": 0, "dur": 5,
             "pid": 0, "tid": 0},
            {"name": "b", "cat": "task", "ph": "X", "ts": 3, "dur": 5,
             "pid": 0, "tid": 0}]})
    # Nested "phase" spans are exempt from the overlap rule.
    validate_chrome_trace({"traceEvents": [
        {"name": "outer", "cat": "phase", "ph": "X", "ts": 0, "dur": 10,
         "pid": 0, "tid": 0},
        {"name": "inner", "cat": "phase", "ph": "X", "ts": 2, "dur": 3,
         "pid": 0, "tid": 0}]})


def test_write_chrome_trace_round_trips(tmp_path, rng):
    tracer = Tracer()
    runtime = make_runtime(num_cores=2, tracer=tracer)
    runtime.run_blocked_gemm(32, rng, verify=False)
    path = write_chrome_trace(to_chrome_trace(tracer, metadata={"n": 32}),
                              tmp_path / "t.trace.json")
    with path.open() as handle:
        loaded = json.load(handle)
    assert loaded["metadata"]["time_unit"] == "cycles"
    assert loaded["metadata"]["n"] == 32
    validate_chrome_trace(loaded)


def test_lac_trace_adapter(tmp_path):
    from repro.lac import LinearAlgebraCore
    from repro.lac.trace import ExecutionTrace

    core = LinearAlgebraCore()
    trace = ExecutionTrace(core)
    with trace.phase("outer"):
        core.tick(10)
        with trace.phase("inner"):
            core.tick(5)
    events = lac_trace_events(trace)
    phases = [e for e in events if e.get("cat") == "phase"]
    assert [e["name"] for e in phases] == ["inner", "outer"]
    inner = next(e for e in phases if e["name"] == "inner")
    assert inner["args"]["nesting"] == 1 and inner["dur"] == 5
    assert "cycles" in inner["args"]
    # Nested phases export as a valid (overlap-exempt) Chrome trace.
    payload = to_chrome_trace(events, time_unit="lac-cycles")
    write_chrome_trace(payload, tmp_path / "lac.trace.json")


# ------------------------------------------------- runtime no-op parity
def test_untraced_run_matches_traced_schedule(rng):
    seeds = np.random.default_rng(3).integers(0, 2 ** 16, 2)
    baseline = make_runtime(num_cores=2, on_chip_kb=8.0, bandwidth_gbs=8.0)
    stats_a = baseline.run_blocked_cholesky(
        64, np.random.default_rng(int(seeds[0])), verify=False)
    traced = make_runtime(num_cores=2, tracer=Tracer(), on_chip_kb=8.0,
                          bandwidth_gbs=8.0)
    stats_b = traced.run_blocked_cholesky(
        64, np.random.default_rng(int(seeds[0])), verify=False)
    assert stats_a == stats_b
    assert ([(e.core_index, e.start_cycle, e.end_cycle)
             for e in baseline.executions]
            == [(e.core_index, e.start_cycle, e.end_cycle)
                for e in traced.executions])
    # A disabled tracer is also schedule-identical and records nothing.
    disabled = make_runtime(num_cores=2, tracer=Tracer(enabled=False),
                            on_chip_kb=8.0, bandwidth_gbs=8.0)
    stats_c = disabled.run_blocked_cholesky(
        64, np.random.default_rng(int(seeds[0])), verify=False)
    assert stats_c == stats_a
    assert disabled.tracer.spans == []


# ------------------------------------------------------------- manifests
def _run_sweep(tmp_path, cache=True):
    spec = (SweepSpec().constants(algorithm="cholesky", n=32, tile=16,
                                  timing="memoized")
            .grid(num_cores=[1, 2]))
    jobs = spec.jobs("lap_runtime")
    result_cache = ResultCache(tmp_path / "cache") if cache else None
    executor = SweepExecutor(mode="serial", cache=result_cache)
    return executor.run(jobs), result_cache


def test_sweep_result_carries_telemetry(tmp_path):
    result, _ = _run_sweep(tmp_path)
    assert len(result.job_latency_s) == 2
    assert all(lat is not None and lat > 0 for lat in result.job_latency_s)
    assert result.shard_timings
    assert sum(s["jobs"] for s in result.shard_timings) == 2
    for shard in result.shard_timings:
        assert shard["runner"] == "lap_runtime"
        assert shard["elapsed_s"] >= 0
    assert result.cache_stats["misses"] == 2
    assert "cache: 0 hits, 2 misses" in result.summary()


def test_warm_sweep_reports_hits_and_null_latency(tmp_path):
    _run_sweep(tmp_path)
    result, cache = _run_sweep(tmp_path)
    assert result.cached == 2 and result.executed == 0
    assert result.job_latency_s == [None, None]
    assert result.cache_stats["hits"] == 2
    assert result.cache_stats["hit_rate"] == pytest.approx(1.0)
    assert "100.0% hit rate" in result.summary()
    # Lifetime counters were persisted across both executor runs.
    lifetime = ResultCache(tmp_path / "cache").lifetime_stats()
    assert lifetime["hits"] == 2 and lifetime["misses"] == 2
    assert lifetime["hit_rate"] == pytest.approx(0.5)


def test_run_manifest_content_and_write(tmp_path):
    result, _ = _run_sweep(tmp_path)
    manifest = build_run_manifest(result, extra={"output": "rows.json"})
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["runner"] == "lap_runtime"
    assert manifest["jobs"] == 2 and manifest["executed"] == 2
    assert manifest["latency"]["count"] == 2
    assert manifest["latency"]["max_s"] >= manifest["latency"]["mean_s"]
    assert manifest["job_params"][0]["algorithm"] == "cholesky"
    assert manifest["output"] == "rows.json"

    target = manifest_path_for(tmp_path / "rows.json")
    assert target.name == "rows.json.manifest.json"
    written = write_run_manifest(result, target)
    with written.open() as handle:
        assert json.load(handle)["schema"] == MANIFEST_SCHEMA


def test_uncached_manifest_has_null_cache(tmp_path):
    result, _ = _run_sweep(tmp_path, cache=False)
    manifest = build_run_manifest(result)
    assert manifest["cache"] is None
    assert "cache:" not in result.summary()
