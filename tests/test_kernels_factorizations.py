"""Functional tests for Cholesky, LU and QR / vector-norm kernels on the LAC."""

import numpy as np
import pytest

from repro.kernels.cholesky import cholesky_unblocked_cycle_estimate, lac_cholesky
from repro.kernels.lu import apply_panel_pivots, lac_lu_panel, reconstruct_from_panel
from repro.kernels.qr import lac_householder_qr_panel, lac_vector_norm
from repro.lac.core import LACConfig, LinearAlgebraCore
from repro.reference import (ref_cholesky, ref_householder_qr, ref_lu_partial_pivoting,
                             ref_vector_norm)


@pytest.fixture
def core():
    return LinearAlgebraCore()


@pytest.fixture
def rng():
    return np.random.default_rng(23)


def _spd(rng, n):
    m = rng.random((n, n))
    return m @ m.T + n * np.eye(n)


# -------------------------------------------------------------- Cholesky
@pytest.mark.parametrize("n", [4, 8, 12])
def test_cholesky_matches_reference(core, rng, n):
    a = _spd(rng, n)
    result = lac_cholesky(core, a)
    np.testing.assert_allclose(result.output, ref_cholesky(a), rtol=1e-9, atol=1e-10)


def test_cholesky_factor_reconstructs_input(core, rng):
    a = _spd(rng, 8)
    l = lac_cholesky(core, a).output
    np.testing.assert_allclose(l @ l.T, a, rtol=1e-9)


def test_cholesky_rejects_non_symmetric(core, rng):
    with pytest.raises(ValueError):
        lac_cholesky(core, rng.random((8, 8)))


def test_cholesky_rejects_indefinite_matrix(core, rng):
    a = _spd(rng, 8)
    a[0, 0] = -1000.0
    a[0, 0] = a[0, 0]  # keep symmetric (diagonal change preserves symmetry)
    with pytest.raises(ValueError):
        lac_cholesky(core, a)


def test_cholesky_uses_inverse_sqrt_on_sfu(core, rng):
    result = lac_cholesky(core, _spd(rng, 8))
    # One inverse sqrt per diagonal element (8) plus the reciprocals of the
    # TRSM panel solve below the first diagonal block (4).
    assert result.counters.sfu_ops == 12


def test_cholesky_unblocked_cycle_estimate():
    assert cholesky_unblocked_cycle_estimate(4, 8, 20) == 2 * 8 * 3 + 20 * 4
    with pytest.raises(ValueError):
        cholesky_unblocked_cycle_estimate(0, 8, 20)


# -------------------------------------------------------------------- LU
@pytest.mark.parametrize("k", [4, 8, 16, 32])
def test_lu_panel_matches_reference(core, rng, k):
    panel = rng.random((k, 4))
    result = lac_lu_panel(core, panel)
    permuted = apply_panel_pivots(panel, result.extra["pivots"])
    l, u = reconstruct_from_panel(result.output)
    np.testing.assert_allclose(l @ u, permuted, rtol=1e-10, atol=1e-12)


def test_lu_panel_pivot_choices_match_reference(core, rng):
    panel = rng.random((12, 4))
    result = lac_lu_panel(core, panel)
    p, l_ref, u_ref = ref_lu_partial_pivoting(panel[:4, :4]) if False else (None, None, None)
    # Check the multipliers are bounded by 1 in magnitude (the point of pivoting).
    l, _ = reconstruct_from_panel(result.output)
    assert np.max(np.abs(np.tril(l, -1))) <= 1.0 + 1e-12


def test_lu_panel_without_comparator_costs_more_cycles(rng):
    panel = np.random.default_rng(3).random((32, 4))
    with_cmp = lac_lu_panel(LinearAlgebraCore(), panel, use_comparator_extension=True)
    without = lac_lu_panel(LinearAlgebraCore(), panel, use_comparator_extension=False)
    assert without.cycles > with_cmp.cycles
    np.testing.assert_allclose(with_cmp.output, without.output)


def test_lu_panel_singular_detection(core):
    panel = np.zeros((8, 4))
    with pytest.raises(ValueError):
        lac_lu_panel(core, panel)


def test_lu_panel_shape_validation(core, rng):
    with pytest.raises(ValueError):
        lac_lu_panel(core, rng.random((8, 3)))
    with pytest.raises(ValueError):
        lac_lu_panel(core, rng.random((2, 4)))


# ----------------------------------------------------------- vector norm
@pytest.mark.parametrize("k", [1, 4, 16, 37, 128])
def test_vector_norm_matches_reference(core, rng, k):
    x = rng.standard_normal(k)
    result = lac_vector_norm(core, x)
    assert result.output == pytest.approx(ref_vector_norm(x), rel=1e-12)


def test_vector_norm_guarded_variant_matches_and_costs_more(rng):
    x = np.random.default_rng(5).standard_normal(64)
    fast = lac_vector_norm(LinearAlgebraCore(), x, use_exponent_extension=True)
    guarded = lac_vector_norm(LinearAlgebraCore(), x, use_exponent_extension=False)
    assert fast.output == pytest.approx(guarded.output, rel=1e-12)
    assert guarded.cycles > fast.cycles


def test_vector_norm_handles_huge_and_tiny_values(core):
    huge = np.array([1e200, 1e200, 1e200])
    tiny = np.array([1e-200, 1e-200])
    assert lac_vector_norm(core, huge, use_exponent_extension=False).output == \
        pytest.approx(np.sqrt(3) * 1e200, rel=1e-12)
    assert lac_vector_norm(LinearAlgebraCore(), tiny,
                           use_exponent_extension=False).output == \
        pytest.approx(np.sqrt(2) * 1e-200, rel=1e-12)


def test_vector_norm_zero_vector(core):
    assert lac_vector_norm(core, np.zeros(8), use_exponent_extension=False).output == 0.0


def test_vector_norm_validation(core):
    with pytest.raises(ValueError):
        lac_vector_norm(core, np.array([]))
    with pytest.raises(ValueError):
        lac_vector_norm(core, np.ones(4), owner_column=7)


# -------------------------------------------------------------------- QR
@pytest.mark.parametrize("k", [4, 8, 16])
def test_qr_panel_r_matches_reference(core, rng, k):
    panel = rng.random((k, 4))
    result = lac_householder_qr_panel(core, panel)
    r_lac = np.triu(result.output[:4, :])
    _, r_ref = ref_householder_qr(panel)
    # R is unique up to column signs.
    np.testing.assert_allclose(np.abs(r_lac), np.abs(r_ref), rtol=1e-9, atol=1e-10)


def test_qr_panel_reconstructs_input(core, rng):
    """Applying the stored reflectors to R must reproduce the original panel."""
    k = 12
    panel = rng.random((k, 4))
    result = lac_householder_qr_panel(core, panel)
    factored = result.output
    taus = result.extra["tau"]
    # Rebuild Q explicitly from the stored Householder vectors.
    # R = H_3 H_2 H_1 H_0 A, each H symmetric orthogonal, so A = H_0 H_1 H_2 H_3 R.
    q = np.eye(k)
    for j in range(3, -1, -1):
        if not np.isfinite(taus[j]):
            continue
        u = np.zeros(k)
        u[j] = 1.0
        u[j + 1:] = factored[j + 1:, j]
        h = np.eye(k) - np.outer(u, u) / taus[j]
        q = h @ q
    r = np.zeros((k, 4))
    r[:4, :] = np.triu(factored[:4, :])
    np.testing.assert_allclose(q @ r, panel, rtol=1e-9, atol=1e-10)


def test_qr_panel_orthogonality_of_reference(rng):
    a = rng.random((16, 4))
    q, r = ref_householder_qr(a)
    np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-10)
    np.testing.assert_allclose(q @ r, a, rtol=1e-10, atol=1e-12)


def test_qr_panel_shape_validation(core, rng):
    with pytest.raises(ValueError):
        lac_householder_qr_panel(core, rng.random((8, 3)))
    with pytest.raises(ValueError):
        lac_householder_qr_panel(core, rng.random((2, 4)))
